"""A small, fast discrete-event simulator.

Design notes
------------
* The event queue is a binary heap of ``(time, seq, event)`` tuples.  Tuples
  compare in C (no Python ``__lt__`` dispatch per sift), and ``seq`` makes
  ordering deterministic when two events share a timestamp, which matters
  for reproducible experiments.
* Cancellation is lazy: :meth:`Simulator.cancel` flips the ``alive`` flag and
  the event is discarded when popped.  This keeps ``schedule``/``cancel``
  O(log n) without heap surgery.  A live-event counter is maintained on
  push/cancel/pop so :attr:`Simulator.pending` is O(1).
* Callbacks run with the simulator clock already advanced to the event time,
  so a callback that calls :meth:`Simulator.schedule` with delay 0 runs later
  in the same instant (after all earlier same-time events).
* Hot callers (the per-element FIFO drain in
  :class:`repro.flash.element.FlashElement`) allocate one :class:`Event` up
  front and re-arm it with :meth:`Simulator.reschedule`, so steady-state
  simulation pushes no new Event objects at all.
* A second, negative sequence lane (:meth:`Simulator.schedule_at_front`)
  exists for *external stimulus*: events that must win every same-timestamp
  tie against simulation-internal events, exactly as if they had all been
  scheduled before the run started.  The streaming trace feeder uses it so
  lazily-fed submissions order identically to the old
  schedule-everything-up-front replay.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]

#: base of the front-lane sequence counter: far below 0 so every front-lane
#: event outranks every normal event at the same timestamp, while front-lane
#: events keep their own scheduling order among themselves
_FRONT_SEQ_BASE = -(2 ** 62)


class SimulationError(RuntimeError):
    """Raised for programming errors against the event loop API."""


class Event:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be passed to
    :meth:`Simulator.cancel`.  The heap orders entries by ``(time, seq)``;
    the comparison here only backs sorting of bare Event lists in tests and
    debugging.
    """

    __slots__ = ("time", "seq", "fn", "args", "alive")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True

    def __lt__(self, other: "Event") -> bool:
        # exact stamp compare is the heap's ordering contract itself
        if self.time != other.time:  # repro: allow[float-time-eq]
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "cancelled"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f}us #{self.seq} {name} {state}>"


class Simulator:
    """Single-threaded discrete-event loop with a float-microsecond clock."""

    __slots__ = ("now", "now_seq", "_heap", "_seq", "_front_seq",
                 "_events_run", "_alive", "__weakref__")

    def __init__(self) -> None:
        self.now: float = 0.0
        #: sequence number of the callback currently executing.  Together
        #: with :attr:`now`, this is the loop's exact position in the global
        #: ``(time, seq)`` order — consumers that replay deferred work in
        #: merged order (:class:`repro.sim.resource.SerialResource`'s fused
        #: reservations) compare against it to decide what logically
        #: precedes the running callback.  Outside a callback it holds the
        #: last executed rank (before any event runs: the front-lane base,
        #: which nothing precedes).
        self.now_seq: int = _FRONT_SEQ_BASE
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._front_seq: int = _FRONT_SEQ_BASE
        self._events_run: int = 0
        self._alive: int = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay_us: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run *delay_us* after the current time."""
        if delay_us < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_us})")
        return self.schedule_at(self.now + delay_us, fn, *args)

    def schedule_at(self, time_us: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the absolute simulated time *time_us*."""
        if time_us < self.now:
            raise SimulationError(
                f"cannot schedule at {time_us} before current time {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time_us, seq, fn, args)
        heapq.heappush(self._heap, (time_us, seq, event))
        self._alive += 1
        return event

    def schedule_at_front(self, time_us: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at *time_us*, ahead of every normal event
        with the same timestamp.

        Front-lane events draw from a separate (deeply negative) sequence
        counter, so they (a) beat any same-time event scheduled through
        :meth:`schedule`/:meth:`schedule_at`/:meth:`reschedule`, and (b)
        keep their own scheduling order among themselves.  This models
        external stimulus — trace records arriving from the host — which
        must order exactly as if the whole trace had been scheduled before
        the simulation started (the streaming replay contract).
        """
        if time_us < self.now:
            raise SimulationError(
                f"cannot schedule at {time_us} before current time {self.now}"
            )
        seq = self._front_seq
        self._front_seq = seq + 1
        event = Event(time_us, seq, fn, args)
        heapq.heappush(self._heap, (time_us, seq, event))
        self._alive += 1
        return event

    def reschedule_at_front(self, event: Event, time_us: float) -> None:
        """Re-arm a previously fired (or never armed) event on the front lane.

        The front-lane counterpart of :meth:`reschedule`: the event draws a
        fresh front-lane sequence number, so it outranks every normal event
        at the same timestamp while keeping scheduling order among
        front-lane users — exactly as if :meth:`schedule_at_front` had been
        called, minus the per-occurrence Event allocation.  The streaming
        trace feeder keeps one such event armed at the next record's
        timestamp.  The caller must guarantee the event is not currently in
        the heap.
        """
        if time_us < self.now:
            raise SimulationError(
                f"cannot schedule at {time_us} before current time {self.now}"
            )
        seq = self._front_seq
        self._front_seq = seq + 1
        event.time = time_us
        event.seq = seq
        event.alive = True
        heapq.heappush(self._heap, (time_us, seq, event))
        self._alive += 1

    def reserve_seq(self) -> int:
        """Claim the next normal-lane sequence number without scheduling.

        For callers that decide *now* where an occurrence ranks among
        same-timestamp events but arm the heap entry later through
        :meth:`reschedule` (e.g. :class:`repro.sim.resource.SerialResource`
        keeps one armed event over a FIFO of pending completions).  Using
        the reserved seq at arm time reproduces exactly the ordering that
        scheduling a fresh event at reservation time would have produced —
        the heap does not require monotone seq insertion, only that every
        ``(time, seq)`` pushed is still in the future, which holds because
        a reserved occurrence's time can only be ahead of the clock.
        """
        seq = self._seq
        self._seq = seq + 1
        return seq

    def reschedule(self, event: Event, time_us: float, seq: Optional[int] = None) -> None:
        """Re-arm a previously fired (or never armed) event at *time_us*.

        Fast path for callers that reuse one Event object instead of
        allocating per occurrence.  The caller must guarantee the event is
        not currently in the heap (it already fired or was never scheduled);
        re-arming a still-queued event would corrupt completion order.

        ``seq`` may be a value obtained earlier from :meth:`reserve_seq`;
        by default a fresh sequence number is drawn at re-arm time.
        """
        if time_us < self.now:
            raise SimulationError(
                f"cannot schedule at {time_us} before current time {self.now}"
            )
        if seq is None:
            seq = self._seq
            self._seq = seq + 1
        event.time = time_us
        event.seq = seq
        event.alive = True
        heapq.heappush(self._heap, (time_us, seq, event))
        self._alive += 1

    def cancel(self, event: Event) -> None:
        """Cancel a pending event; cancelling twice or after it ran is a no-op."""
        if event.alive:
            event.alive = False
            self._alive -= 1

    # -- running ----------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        heap = self._heap
        while heap:
            time_us, seq, event = heapq.heappop(heap)
            if not event.alive:
                continue
            self.now = time_us
            event.alive = False
            self._alive -= 1
            self._events_run += 1
            self.now_seq = seq
            event.fn(*event.args)
            return True
        return False

    def run(self, until_us: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, the clock passes *until_us*, or
        *max_events* callbacks have run.  Returns the number of callbacks run.

        When stopping on *until_us*, the clock is advanced to exactly
        *until_us* and events scheduled later stay queued.
        """
        ran = 0
        heap = self._heap
        pop = heapq.heappop
        if until_us is None and max_events is None:
            # hot path: drain everything, no bound checks per iteration
            while heap:
                time_us, seq, event = pop(heap)
                if not event.alive:
                    continue
                self.now = time_us
                event.alive = False
                self._alive -= 1
                self.now_seq = seq
                event.fn(*event.args)
                ran += 1
                # same-instant micro-batch: the rest of an identical-time
                # group (batched submissions arrive in bursts) drains here
                # without touching the clock again.  Callbacks that
                # schedule back into the running instant push into the
                # heap and are picked up by the same drain, so execution
                # stays in exact (time, seq) order.
                # same-instant test reuses the exact popped stamp, so float
                # equality is sound here  # repro: allow[float-time-eq]
                while heap and heap[0][0] == time_us:
                    _t, seq, event = pop(heap)
                    if not event.alive:
                        continue
                    event.alive = False
                    self._alive -= 1
                    self.now_seq = seq
                    event.fn(*event.args)
                    ran += 1
            self._events_run += ran
            return ran
        while heap:
            if max_events is not None and ran >= max_events:
                break
            time_us, seq, event = heap[0]
            if not event.alive:
                pop(heap)
                continue
            if until_us is not None and time_us > until_us:
                break
            pop(heap)
            self.now = time_us
            event.alive = False
            self._alive -= 1
            self.now_seq = seq
            event.fn(*event.args)
            ran += 1
        if until_us is not None and self.now < until_us:
            self.now = until_us
        self._events_run += ran
        return ran

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain.  Convenience wrapper over :meth:`run`."""
        return self.run(until_us=None, max_events=max_events)

    # -- introspection ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1): a live
        counter is maintained on push/cancel/pop."""
        return self._alive

    @property
    def events_run(self) -> int:
        """Total callbacks executed since construction."""
        return self._events_run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.3f}us queued={len(self._heap)}>"

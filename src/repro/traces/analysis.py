"""Trace analysis: the workload properties the paper's results hinge on.

Every experiment's outcome is a function of a few trace characteristics —
read/write mix, request-size distribution, *sequentiality* (how often a
request continues its predecessor), footprint, and arrival intensity.
:func:`analyze` computes them so generated (or imported) traces can be
validated against the workload they claim to model, and so EXPERIMENTS.md
claims ("IOzone is large and sequential") are checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.traces.record import TraceOp, TraceRecord
from repro.units import mb_per_s

__all__ = ["TraceProfile", "analyze", "sequentiality"]


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of a block trace."""

    records: int
    reads: int
    writes: int
    frees: int
    read_fraction: float
    bytes_read: int
    bytes_written: int
    bytes_freed: int
    mean_request_bytes: float
    min_request_bytes: int
    max_request_bytes: int
    #: fraction of READ/WRITE requests that start where the previous
    #: same-op request ended
    sequentiality: float
    #: distinct 4 KB blocks touched by reads/writes
    footprint_bytes: int
    #: highest byte address touched
    address_span_bytes: int
    duration_us: float
    mean_interarrival_us: float
    offered_load_mb_s: float
    priority_fraction: float

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return "\n".join([
            f"records        : {self.records} "
            f"(R {self.reads} / W {self.writes} / F {self.frees})",
            f"read fraction  : {self.read_fraction:.2f}",
            f"request bytes  : mean {self.mean_request_bytes:,.0f} "
            f"[{self.min_request_bytes:,} .. {self.max_request_bytes:,}]",
            f"sequentiality  : {self.sequentiality:.2f}",
            f"footprint      : {self.footprint_bytes / (1 << 20):.1f} MiB "
            f"over a {self.address_span_bytes / (1 << 20):.1f} MiB span",
            f"duration       : {self.duration_us / 1000:.1f} ms "
            f"(mean inter-arrival {self.mean_interarrival_us:.1f} us)",
            f"offered load   : {self.offered_load_mb_s:.1f} MB/s",
            f"priority       : {self.priority_fraction:.2f} of requests",
        ])


def sequentiality(records: Sequence[TraceRecord]) -> float:
    """Fraction of READ/WRITE requests continuing the previous request of
    the same op (the knob Table 3 sweeps, measured back from a trace)."""
    last_end: Dict[TraceOp, int] = {}
    sequential = 0
    considered = 0
    for record in records:
        if record.op is TraceOp.FREE:
            continue
        if record.op in last_end:
            considered += 1
            if record.offset == last_end[record.op]:
                sequential += 1
        last_end[record.op] = record.end
    return sequential / considered if considered else 0.0


def analyze(records: Iterable[TraceRecord], block_bytes: int = 4096) -> TraceProfile:
    """Compute a :class:`TraceProfile` over *records*."""
    records = list(records)
    if not records:
        raise ValueError("cannot analyze an empty trace")
    reads = [r for r in records if r.op is TraceOp.READ]
    writes = [r for r in records if r.op is TraceOp.WRITE]
    frees = [r for r in records if r.op is TraceOp.FREE]
    io_records = [r for r in records if r.op is not TraceOp.FREE]

    touched = set()
    span = 0
    for record in io_records:
        span = max(span, record.end)
        touched.update(
            range(record.offset // block_bytes, -(-record.end // block_bytes))
        )

    duration = records[-1].time_us - records[0].time_us
    total_io_bytes = sum(r.size for r in io_records)
    sizes = [r.size for r in io_records] or [0]
    return TraceProfile(
        records=len(records),
        reads=len(reads),
        writes=len(writes),
        frees=len(frees),
        read_fraction=len(reads) / len(io_records) if io_records else 0.0,
        bytes_read=sum(r.size for r in reads),
        bytes_written=sum(r.size for r in writes),
        bytes_freed=sum(r.size for r in frees),
        mean_request_bytes=total_io_bytes / len(io_records) if io_records else 0.0,
        min_request_bytes=min(sizes),
        max_request_bytes=max(sizes),
        sequentiality=sequentiality(records),
        footprint_bytes=len(touched) * block_bytes,
        address_span_bytes=span,
        duration_us=duration,
        mean_interarrival_us=duration / max(1, len(records) - 1),
        offered_load_mb_s=mb_per_s(total_io_bytes, duration) if duration else 0.0,
        priority_fraction=(
            sum(1 for r in records if r.priority > 0) / len(records)
        ),
    )

"""IOzone-style block trace (Table 4 macro workload).

IOzone's automatic mode streams large sequential writes, rewrites, and
reads over a test file.  Its writes are big and contiguous, so nearly every
one of them completes a 32 KB stripe in the aligning buffer — the paper
measures a 36.54% response-time improvement, by far the largest of the
four macro workloads ("IOzone benefits the most due to its large write
sizes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.rng import stream
from repro.traces.record import TraceOp, TraceRecord

__all__ = ["IOzoneConfig", "generate_iozone"]


@dataclass(frozen=True)
class IOzoneConfig:
    count: int = 3000
    file_bytes: int = 128 << 20
    record_bytes: int = 256 * 1024
    #: write, rewrite, read, reread phase proportions (normalized)
    write_share: float = 0.35
    rewrite_share: float = 0.25
    read_share: float = 0.25
    interarrival_us: float = 500.0
    seed: int = 42


def generate_iozone(config: IOzoneConfig) -> List[TraceRecord]:
    arrival_rng = stream(config.seed, "iozone-arrivals")
    records: List[TraceRecord] = []
    now = 0.0
    position = 0

    def advance() -> int:
        nonlocal position
        offset = position
        position += config.record_bytes
        if position + config.record_bytes > config.file_bytes:
            position = 0
        return offset

    n_write = int(config.count * config.write_share)
    n_rewrite = int(config.count * config.rewrite_share)
    n_read = int(config.count * config.read_share)
    n_reread = config.count - n_write - n_rewrite - n_read

    phases = (
        (TraceOp.WRITE, n_write),
        (TraceOp.WRITE, n_rewrite),
        (TraceOp.READ, n_read),
        (TraceOp.READ, n_reread),
    )
    for op, count in phases:
        position = 0
        for _ in range(count):
            now += arrival_rng.expovariate(1.0 / config.interarrival_us)
            records.append(TraceRecord(now, op, advance(), config.record_bytes))
    return records

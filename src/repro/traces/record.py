"""The trace record: one timestamped block-level operation.

Traces are the lingua franca between workload generators and devices.  A
record's ``op`` is READ/WRITE/FREE — FREE being the delete notification that
the paper's informed-cleaning experiment feeds the SSD (§3.5); devices
without trim support simply complete FREEs as no-ops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.device.interface import OpType

__all__ = ["TraceOp", "TraceRecord"]


class TraceOp(enum.Enum):
    READ = "R"
    WRITE = "W"
    FREE = "F"

    def to_op_type(self) -> OpType:
        return _TO_OPTYPE[self]

    @classmethod
    def parse(cls, token: str) -> "TraceOp":
        try:
            return cls(token.upper())
        except ValueError:
            raise ValueError(f"unknown trace op {token!r} (expected R/W/F)") from None


_TO_OPTYPE = {
    TraceOp.READ: OpType.READ,
    TraceOp.WRITE: OpType.WRITE,
    TraceOp.FREE: OpType.FREE,
}


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One operation: issue ``op`` on bytes [offset, offset+size) at
    ``time_us`` with the given priority class (0 = background).

    ``slots=True``: traces are produced at replay-path rates (one record
    per simulated request), so the instance must stay dict-free and
    compact."""

    time_us: float
    op: TraceOp
    offset: int
    size: int
    priority: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"trace record size must be positive, got {self.size}")
        if self.offset < 0:
            raise ValueError(f"trace record offset must be >= 0, got {self.offset}")
        if self.time_us < 0:
            raise ValueError(f"trace record time must be >= 0, got {self.time_us}")

    @property
    def end(self) -> int:
        return self.offset + self.size

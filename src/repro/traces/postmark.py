"""Postmark-style file workload → block trace with delete notifications.

Postmark [14] models small-file mail/news servers: create an initial file
pool, then run transactions that create, delete, read, or append files.
Run over :class:`repro.traces.filesystem.Ext3LiteAllocator`, every file
operation becomes block-level READ/WRITE records, and every delete emits
FREE records for the file's blocks — the trace shape the paper's informed
cleaning experiment needs (reads, writes, *and* block-free operations,
§3.5).

The generator is deterministic per seed and tracks enough state (file →
block extents) to emit exact FREE ranges on delete, with freed blocks
eagerly reused by later allocations, as Ext3 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.rng import stream
from repro.traces.filesystem import Ext3LiteAllocator
from repro.traces.record import TraceOp, TraceRecord

__all__ = ["PostmarkConfig", "generate_postmark"]

_BLOCK = 4096


@dataclass(frozen=True)
class PostmarkConfig:
    """Postmark knobs (sizes in bytes; block-level granularity is 4 KB)."""

    volume_bytes: int = 256 << 20
    initial_files: int = 500
    transactions: int = 5000
    min_file_bytes: int = 4096
    max_file_bytes: int = 64 * 1024
    #: transaction mix (create+delete and read+append, as in Postmark)
    create_bias: float = 0.5
    read_bias: float = 0.5
    #: mean inter-arrival between block operations
    interarrival_us: float = 200.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.initial_files <= 0 or self.transactions < 0:
            raise ValueError("initial_files must be > 0, transactions >= 0")
        if self.min_file_bytes <= 0 or self.max_file_bytes < self.min_file_bytes:
            raise ValueError("bad file size range")
        if not 0.0 <= self.create_bias <= 1.0 or not 0.0 <= self.read_bias <= 1.0:
            raise ValueError("biases must be in [0, 1]")


class _File:
    __slots__ = ("blocks", "group")

    def __init__(self, blocks: List[int], group: int):
        self.blocks = blocks
        self.group = group


def generate_postmark(config: PostmarkConfig) -> List[TraceRecord]:
    """Run the Postmark state machine; returns the block-level trace."""
    size_rng = stream(config.seed, "sizes")
    op_rng = stream(config.seed, "ops")
    pick_rng = stream(config.seed, "files")
    arrival_rng = stream(config.seed, "arrivals")

    allocator = Ext3LiteAllocator(config.volume_bytes // _BLOCK)
    files: Dict[int, _File] = {}
    next_id = 0
    records: List[TraceRecord] = []
    clock = [0.0]

    def tick() -> float:
        clock[0] += arrival_rng.expovariate(1.0 / config.interarrival_us)
        return clock[0]

    def emit(op: TraceOp, blocks: List[int]) -> None:
        """Coalesce consecutive block runs into single records."""
        if not blocks:
            return
        run_start = blocks[0]
        run_len = 1
        for block in blocks[1:]:
            if block == run_start + run_len:
                run_len += 1
                continue
            records.append(
                TraceRecord(tick(), op, run_start * _BLOCK, run_len * _BLOCK)
            )
            run_start, run_len = block, 1
        records.append(
            TraceRecord(tick(), op, run_start * _BLOCK, run_len * _BLOCK)
        )

    def create_file() -> None:
        nonlocal next_id
        nbytes = size_rng.randint(config.min_file_bytes, config.max_file_bytes)
        nblocks = -(-nbytes // _BLOCK)
        if allocator.free_blocks < nblocks:
            return  # volume full: Postmark would error; we skip the create
        group = pick_rng.randrange(allocator.n_groups)
        blocks = allocator.allocate(nblocks, group_hint=group)
        files[next_id] = _File(blocks, group)
        next_id += 1
        emit(TraceOp.WRITE, blocks)

    def delete_file() -> None:
        if not files:
            return
        fid = pick_rng.choice(list(files))
        victim = files.pop(fid)
        allocator.free(victim.blocks)
        emit(TraceOp.FREE, victim.blocks)

    def read_file() -> None:
        if not files:
            return
        fid = pick_rng.choice(list(files))
        emit(TraceOp.READ, files[fid].blocks)

    def append_file() -> None:
        if not files:
            return
        fid = pick_rng.choice(list(files))
        target = files[fid]
        nbytes = size_rng.randint(config.min_file_bytes, config.max_file_bytes) // 4
        nblocks = max(1, nbytes // _BLOCK)
        if allocator.free_blocks < nblocks:
            return
        blocks = allocator.allocate(nblocks, group_hint=target.group)
        target.blocks.extend(blocks)
        emit(TraceOp.WRITE, blocks)

    for _ in range(config.initial_files):
        create_file()
    for _ in range(config.transactions):
        if op_rng.random() < 0.5:
            if op_rng.random() < config.create_bias:
                create_file()
            else:
                delete_file()
        else:
            if op_rng.random() < config.read_bias:
                read_file()
            else:
                append_file()
    # Postmark ends by deleting remaining files; keep that phase — it is a
    # burst of FREEs that informed cleaning exploits
    for fid in list(files):
        victim = files.pop(fid)
        allocator.free(victim.blocks)
        emit(TraceOp.FREE, victim.blocks)
    return records

"""TPC-C-style block trace (Table 4 macro workload).

OLTP against a buffer-managed database: dominant pattern is random 8 KB
page I/O over a large table+index region (≈65% reads / 35% writes), plus a
small sequential log-append stream.  Random page-sized writes rarely merge
into 32 KB stripes, which is why the paper measures only a 3.08%
improvement from stripe alignment on TPCC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.rng import stream
from repro.traces.record import TraceOp, TraceRecord

__all__ = ["TPCCConfig", "generate_tpcc"]


@dataclass(frozen=True)
class TPCCConfig:
    count: int = 5000
    region_bytes: int = 192 << 20
    page_bytes: int = 8192
    read_fraction: float = 0.65
    #: fraction of operations that are sequential log appends
    log_fraction: float = 0.10
    log_bytes: int = 4096
    #: log area at the top of the region
    log_region_bytes: int = 16 << 20
    interarrival_us: float = 300.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.region_bytes <= self.log_region_bytes:
            raise ValueError("region must exceed the log area")


def generate_tpcc(config: TPCCConfig) -> List[TraceRecord]:
    addr_rng = stream(config.seed, "tpcc-addr")
    mix_rng = stream(config.seed, "tpcc-mix")
    arrival_rng = stream(config.seed, "tpcc-arrivals")

    table_bytes = config.region_bytes - config.log_region_bytes
    table_pages = table_bytes // config.page_bytes
    records: List[TraceRecord] = []
    now = 0.0
    log_head = table_bytes
    for _ in range(config.count):
        now += arrival_rng.expovariate(1.0 / config.interarrival_us)
        if mix_rng.random() < config.log_fraction:
            if log_head + config.log_bytes > config.region_bytes:
                log_head = table_bytes
            records.append(
                TraceRecord(now, TraceOp.WRITE, log_head, config.log_bytes)
            )
            log_head += config.log_bytes
            continue
        offset = addr_rng.randrange(table_pages) * config.page_bytes
        op = TraceOp.READ if mix_rng.random() < config.read_fraction else TraceOp.WRITE
        records.append(TraceRecord(now, op, offset, config.page_bytes))
    return records

"""Trace model, serialization, generators, pattern suite, and ingest."""

from repro.traces.analysis import TraceProfile, analyze, sequentiality
from repro.traces.record import TraceOp, TraceRecord
from repro.traces.ingest import iter_msr_csv, load_msr_csv
from repro.traces.io import load_trace, save_trace
from repro.traces.patterns import (Barrier, PatternConfig, Pause, compose,
                                   iter_hot_cold, iter_random, iter_sequential,
                                   iter_snake, iter_strided, iter_zipf,
                                   strided_period)
from repro.traces.synthetic import SyntheticConfig, generate_synthetic

__all__ = [
    "TraceOp",
    "TraceRecord",
    "TraceProfile",
    "analyze",
    "sequentiality",
    "load_trace",
    "save_trace",
    "SyntheticConfig",
    "generate_synthetic",
    "PatternConfig",
    "Barrier",
    "Pause",
    "compose",
    "iter_sequential",
    "iter_random",
    "iter_strided",
    "iter_snake",
    "iter_zipf",
    "iter_hot_cold",
    "strided_period",
    "iter_msr_csv",
    "load_msr_csv",
]

"""Trace model, serialization, and workload-specific generators."""

from repro.traces.analysis import TraceProfile, analyze, sequentiality
from repro.traces.record import TraceOp, TraceRecord
from repro.traces.io import load_trace, save_trace
from repro.traces.synthetic import SyntheticConfig, generate_synthetic

__all__ = [
    "TraceOp",
    "TraceRecord",
    "TraceProfile",
    "analyze",
    "sequentiality",
    "load_trace",
    "save_trace",
    "SyntheticConfig",
    "generate_synthetic",
]

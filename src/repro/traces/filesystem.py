"""A minimal Ext3-flavoured block allocator for the file workload generators.

The paper's informed-cleaning experiment ran Postmark on Ext3 over a
pseudo-device driver that reported freed sectors to the simulator (§3.5).
To regenerate that trace shape we need an allocator with Ext3's relevant
behaviour: block groups, a rotating goal pointer per group (next-fit), and
a group hint per file.  The goal pointer means freed blocks are *not*
reused immediately — allocation cycles through the whole volume first — so
at any moment a large set of device addresses holds dead file data.  An
uninformed SSD dutifully preserves all of it; that is precisely the waste
Table 5 quantifies.

This is an allocator model, not a file system: no journals, no metadata
blocks — the generators account for data blocks only.
"""

from __future__ import annotations

import bisect
from typing import List

__all__ = ["Ext3LiteAllocator", "AllocationError"]


class AllocationError(RuntimeError):
    """The allocator ran out of blocks."""


class Ext3LiteAllocator:
    """Block-group bitmap allocator with next-fit (goal pointer) policy."""

    def __init__(self, total_blocks: int, blocks_per_group: int = 8192) -> None:
        if total_blocks <= 0 or blocks_per_group <= 0:
            raise ValueError("block counts must be positive")
        self.total_blocks = total_blocks
        self.blocks_per_group = min(blocks_per_group, total_blocks)
        self.n_groups = -(-total_blocks // self.blocks_per_group)
        #: per-group sorted free lists
        self._free: List[List[int]] = []
        #: per-group goal pointer: allocation resumes after the last grant
        self._cursor: List[int] = [0] * self.n_groups
        for group in range(self.n_groups):
            start = group * self.blocks_per_group
            end = min(start + self.blocks_per_group, total_blocks)
            self._free.append(list(range(start, end)))
            self._cursor[group] = start
        self.free_blocks = total_blocks

    def _take_from_group(self, group: int, count: int) -> List[int]:
        bucket = self._free[group]
        if not bucket:
            return []
        index = bisect.bisect_left(bucket, self._cursor[group])
        out: List[int] = []
        # from the goal pointer to the end, then wrap
        take = min(count, len(bucket) - index)
        out.extend(bucket[index : index + take])
        del bucket[index : index + take]
        if len(out) < count and bucket:
            take = min(count - len(out), index)
            out.extend(bucket[:take])
            del bucket[:take]
        if out:
            self._cursor[group] = out[-1] + 1
        return out

    def allocate(self, count: int, group_hint: int = 0) -> List[int]:
        """Allocate *count* blocks, preferring the hinted group, spilling to
        subsequent groups Ext3-style.  Returns the block numbers."""
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self.free_blocks:
            raise AllocationError(
                f"need {count} blocks, only {self.free_blocks} free"
            )
        out: List[int] = []
        group = group_hint % self.n_groups
        scanned = 0
        while len(out) < count and scanned <= self.n_groups:
            out.extend(self._take_from_group(group, count - len(out)))
            group = (group + 1) % self.n_groups
            scanned += 1
        if len(out) < count:  # pragma: no cover - guarded by free_blocks
            raise AllocationError("allocator inconsistency")
        self.free_blocks -= len(out)
        return out

    def free(self, blocks: List[int]) -> None:
        """Return blocks to their groups (kept sorted); rejects double frees."""
        for block in blocks:
            if not 0 <= block < self.total_blocks:
                raise ValueError(f"block {block} out of range")
            group = block // self.blocks_per_group
            bucket = self._free[group]
            index = bisect.bisect_left(bucket, block)
            if index < len(bucket) and bucket[index] == block:
                raise ValueError(f"double free of block {block}")
            bucket.insert(index, block)
        self.free_blocks += len(blocks)

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self.free_blocks

    def utilization(self) -> float:
        return self.used_blocks / self.total_blocks

"""Exchange-server-style block trace (Table 4 macro workload).

Mail-server storage (the paper's Exchange trace) mixes random database-page
I/O with *bursty runs* of medium-sized writes — message delivery batches
and background maintenance touch neighbouring pages.  Those short
sequential runs give the aligning buffer something to merge, which is why
Exchange gains more than TPCC (4.89% vs 3.08%) but far less than IOzone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.rng import stream
from repro.traces.record import TraceOp, TraceRecord

__all__ = ["ExchangeConfig", "generate_exchange"]


@dataclass(frozen=True)
class ExchangeConfig:
    count: int = 5000
    region_bytes: int = 192 << 20
    page_bytes: int = 8192
    read_fraction: float = 0.55
    #: a write burst touches this many consecutive pages on average
    burst_mean_pages: int = 3
    burst_max_pages: int = 8
    interarrival_us: float = 300.0
    seed: int = 42


def generate_exchange(config: ExchangeConfig) -> List[TraceRecord]:
    addr_rng = stream(config.seed, "exch-addr")
    mix_rng = stream(config.seed, "exch-mix")
    burst_rng = stream(config.seed, "exch-burst")
    arrival_rng = stream(config.seed, "exch-arrivals")

    pages = config.region_bytes // config.page_bytes
    records: List[TraceRecord] = []
    now = 0.0
    emitted = 0
    while emitted < config.count:
        now += arrival_rng.expovariate(1.0 / config.interarrival_us)
        if mix_rng.random() < config.read_fraction:
            offset = addr_rng.randrange(pages) * config.page_bytes
            records.append(TraceRecord(now, TraceOp.READ, offset, config.page_bytes))
            emitted += 1
            continue
        # write burst: consecutive pages, arriving back-to-back
        length = min(
            config.burst_max_pages,
            max(1, round(burst_rng.expovariate(1.0 / config.burst_mean_pages))),
        )
        start = addr_rng.randrange(max(1, pages - length)) * config.page_bytes
        for index in range(length):
            if emitted >= config.count:
                break
            now += arrival_rng.expovariate(1.0 / (config.interarrival_us / 4))
            records.append(
                TraceRecord(
                    now, TraceOp.WRITE,
                    start + index * config.page_bytes, config.page_bytes,
                )
            )
            emitted += 1
    return records

"""Synthetic block traces with controllable sequentiality, mix, and arrivals.

Two experiments in the paper are driven by exactly this generator:

* Table 3 — "a synthetic workload that issued a stream of writes with
  varying degrees of sequentiality": ``read_fraction=0``,
  ``seq_probability`` swept 0 → 0.8.
* Figure 3 / Table 6 — "synthetic benchmarks with request inter-arrival
  times uniformly distributed between 0 and 0.1 ms.  The fraction of
  priority requests was set to 10%": ``interarrival_max_us=100``,
  ``priority_fraction=0.1``, write fraction swept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.sim.rng import stream
from repro.traces.record import TraceOp, TraceRecord
from repro.units import align_down

__all__ = ["SyntheticConfig", "generate_synthetic", "iter_synthetic"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator (sizes in bytes, times in µs)."""

    count: int = 1000
    region_bytes: int = 64 << 20
    request_bytes: int = 4096
    read_fraction: float = 0.0
    #: probability the next request continues where the previous ended
    seq_probability: float = 0.0
    #: inter-arrival ~ U(0, interarrival_max_us); 0 packs all at t=0
    interarrival_max_us: float = 100.0
    #: "uniform" (the paper's Figure 3 process) or "poisson" with the same
    #: mean (interarrival_max_us / 2)
    arrival_process: str = "uniform"
    #: fraction of requests tagged priority (foreground)
    priority_fraction: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.arrival_process not in ("uniform", "poisson"):
            raise ValueError(
                f"arrival_process must be 'uniform' or 'poisson', got "
                f"{self.arrival_process!r}"
            )
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.request_bytes <= 0 or self.request_bytes % 512:
            raise ValueError("request_bytes must be a positive multiple of 512")
        if self.region_bytes < self.request_bytes:
            raise ValueError("region must hold at least one request")
        for name in ("read_fraction", "seq_probability", "priority_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def iter_synthetic(config: SyntheticConfig) -> Iterator[TraceRecord]:
    """Yield the trace described by *config* lazily (deterministic per seed).

    One record is materialized at a time, so a 10M-record replay can feed
    :func:`repro.workloads.driver.replay_trace` straight from the generator
    with O(1) trace memory.  Identical stream to
    :func:`generate_synthetic`: the list form is just this iterator,
    collected (the RNG draw order, including the first record's skipped
    sequentiality roll, is preserved exactly).
    """
    addr_rng = stream(config.seed, "addresses")
    mix_rng = stream(config.seed, "mix")
    arrival_rng = stream(config.seed, "arrivals")
    priority_rng = stream(config.seed, "priority")

    slots = config.region_bytes // config.request_bytes
    now = 0.0
    last_end = 0
    first = True
    mean_interarrival = config.interarrival_max_us / 2.0
    for _ in range(config.count):
        if config.interarrival_max_us > 0:
            if config.arrival_process == "poisson":
                now += arrival_rng.expovariate(1.0 / mean_interarrival)
            else:
                now += arrival_rng.uniform(0.0, config.interarrival_max_us)
        op = (
            TraceOp.READ
            if mix_rng.random() < config.read_fraction
            else TraceOp.WRITE
        )
        if not first and addr_rng.random() < config.seq_probability:
            offset = last_end
            if offset + config.request_bytes > config.region_bytes:
                offset = 0
        else:
            offset = addr_rng.randrange(slots) * config.request_bytes
        offset = align_down(offset, 512)
        priority = (
            1
            if config.priority_fraction > 0
            and priority_rng.random() < config.priority_fraction
            else 0
        )
        yield TraceRecord(now, op, offset, config.request_bytes, priority)
        first = False
        last_end = offset + config.request_bytes


def generate_synthetic(config: SyntheticConfig) -> List[TraceRecord]:
    """Produce the trace described by *config* (deterministic per seed)."""
    return list(iter_synthetic(config))

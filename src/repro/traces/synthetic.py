"""Synthetic block traces with controllable sequentiality, mix, and arrivals.

Two experiments in the paper are driven by exactly this generator:

* Table 3 — "a synthetic workload that issued a stream of writes with
  varying degrees of sequentiality": ``read_fraction=0``,
  ``seq_probability`` swept 0 → 0.8.
* Figure 3 / Table 6 — "synthetic benchmarks with request inter-arrival
  times uniformly distributed between 0 and 0.1 ms.  The fraction of
  priority requests was set to 10%": ``interarrival_max_us=100``,
  ``priority_fraction=0.1``, write fraction swept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.sim.rng import stream
from repro.traces.record import TraceOp, TraceRecord

__all__ = ["SyntheticConfig", "generate_synthetic", "iter_synthetic"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator (sizes in bytes, times in µs)."""

    count: int = 1000
    region_bytes: int = 64 << 20
    request_bytes: int = 4096
    read_fraction: float = 0.0
    #: probability the next request continues where the previous ended
    seq_probability: float = 0.0
    #: inter-arrival ~ U(0, interarrival_max_us); 0 packs all at t=0
    interarrival_max_us: float = 100.0
    #: "uniform" (the paper's Figure 3 process) or "poisson" with the same
    #: mean (interarrival_max_us / 2)
    arrival_process: str = "uniform"
    #: fraction of requests tagged priority (foreground)
    priority_fraction: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.arrival_process not in ("uniform", "poisson"):
            raise ValueError(
                f"arrival_process must be 'uniform' or 'poisson', got "
                f"{self.arrival_process!r}"
            )
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.request_bytes <= 0 or self.request_bytes % 512:
            raise ValueError("request_bytes must be a positive multiple of 512")
        if self.region_bytes < self.request_bytes:
            raise ValueError("region must hold at least one request")
        for name in ("read_fraction", "seq_probability", "priority_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def iter_synthetic(config: SyntheticConfig) -> Iterator[TraceRecord]:
    """Yield the trace described by *config* lazily (deterministic per seed).

    One record is materialized at a time, so a 10M-record replay can feed
    :func:`repro.workloads.driver.replay_trace` straight from the generator
    with O(1) trace memory.  Identical stream to
    :func:`generate_synthetic`: the list form is just this iterator,
    collected (the RNG draw order, including the first record's skipped
    sequentiality roll, is preserved exactly).
    """
    addr_rng = stream(config.seed, "addresses")
    mix_rng = stream(config.seed, "mix")
    arrival_rng = stream(config.seed, "arrivals")
    priority_rng = stream(config.seed, "priority")

    # the loop below runs once per replayed record; config fields and rng
    # entry points are hoisted so the per-record cost is the draws and the
    # record itself, not attribute traffic (draw order is untouched)
    count = config.count
    region_bytes = config.region_bytes
    request_bytes = config.request_bytes
    read_fraction = config.read_fraction
    seq_probability = config.seq_probability
    priority_fraction = config.priority_fraction
    interarrival_max_us = config.interarrival_max_us
    poisson = config.arrival_process == "poisson"
    rate = (2.0 / interarrival_max_us
            if poisson and interarrival_max_us > 0 else 0.0)
    addr_random = addr_rng.random
    addr_randrange = addr_rng.randrange
    mix_random = mix_rng.random
    priority_random = priority_rng.random
    arrival_uniform = arrival_rng.uniform
    arrival_expovariate = arrival_rng.expovariate
    read_op, write_op = TraceOp.READ, TraceOp.WRITE

    slots = region_bytes // request_bytes
    now = 0.0
    last_end = 0
    first = True
    for _ in range(count):
        if interarrival_max_us > 0:
            if poisson:
                now += arrival_expovariate(rate)
            else:
                now += arrival_uniform(0.0, interarrival_max_us)
        op = read_op if mix_random() < read_fraction else write_op
        if not first and addr_random() < seq_probability:
            offset = last_end
            if offset + request_bytes > region_bytes:
                offset = 0
        else:
            offset = addr_randrange(slots) * request_bytes
        offset -= offset % 512  # align_down(offset, 512), sans the call
        priority = (
            1
            if priority_fraction > 0
            and priority_random() < priority_fraction
            else 0
        )
        yield TraceRecord(now, op, offset, request_bytes, priority)
        first = False
        last_end = offset + request_bytes


def generate_synthetic(config: SyntheticConfig) -> List[TraceRecord]:
    """Produce the trace described by *config* (deterministic per seed)."""
    return list(iter_synthetic(config))

"""Composable access-pattern suite: the synthetic half of the workload zoo.

:mod:`repro.traces.synthetic` models the paper's own generator (one knob of
sequentiality, one mix).  Real device studies need a *zoo* of access shapes,
and the classic suites (wiscsee's ``patternsuite``/``lbabench`` family) build
them from a handful of composable primitives.  This module ports that idea
onto the repo's streaming replay:

* every pattern is a **lazy, seeded generator** of
  :class:`~repro.traces.record.TraceRecord` — one record materialized at a
  time, so a pattern can feed
  :func:`repro.workloads.driver.replay_trace`'s bounded window at O(1)
  memory regardless of ``count`` (the zipf/hot-cold tables are O(region
  slots), the same order as the FTL map itself);
* patterns share one :class:`PatternConfig` (count, region, request size,
  read/write mix, arrival process, priority tagging, seed), so "the same
  traffic, different address shape" is a one-argument change;
* phases compose: :func:`compose` chains pattern streams and emits
  **control records** between them — :class:`Barrier` (drain the device
  before the next phase; phase timestamps restart at the drain instant) and
  :class:`Pause` (inject idle time, e.g. to let background cleaning run).
  :func:`repro.workloads.driver.replay_pattern` interprets them.

Address shapes
--------------
=============  ===========================================================
sequential     wrap-around ascending sweep from slot 0
random         uniform over the region's request slots
strided        arithmetic slot progression ``(i * stride) % region`` —
               period is ``slots / gcd(stride_slots, slots)``
snake          a creeping window of live data: write at the head, FREE
               (trim) the slot one window behind, wrapping the region —
               the canonical informed-cleaning (TRIM) exercise
zipf           slot popularity ``∝ 1/rank**theta``, ranks scattered over
               the region by a seeded permutation
hot/cold       a fraction of the space (the hot set) takes a fraction of
               the accesses — the classic skew knob
=============  ===========================================================

Determinism: every pattern draws from :func:`repro.sim.rng.stream` streams
namespaced per pattern (``pattern.<name>.<purpose>``), so a (seed, pattern)
pair always replays the identical trace and adding a new pattern never
perturbs existing ones.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from math import gcd
from typing import Iterable, Iterator, List, Union

from repro.sim.rng import stream
from repro.traces.record import TraceOp, TraceRecord

__all__ = [
    "PatternConfig",
    "Barrier",
    "Pause",
    "PatternRecord",
    "compose",
    "iter_sequential",
    "iter_random",
    "iter_strided",
    "iter_snake",
    "iter_zipf",
    "iter_hot_cold",
    "strided_period",
]


@dataclass(frozen=True, slots=True)
class Barrier:
    """Control record: stop admitting later records until every earlier
    request has completed (the device drains).  The next phase's timestamps
    restart at the drain instant, so each phase carries its own relative
    timeline starting at 0."""

    label: str = ""


@dataclass(frozen=True, slots=True)
class Pause:
    """Control record: shift every later record of the current segment
    ``delta_us`` into the future — injected idle time (background cleaning
    and wear-leveling keep running through it)."""

    delta_us: float

    def __post_init__(self) -> None:
        if self.delta_us < 0:
            raise ValueError(f"pause must be >= 0 us, got {self.delta_us}")


#: what a pattern stream yields: data records plus the two control records
PatternRecord = Union[TraceRecord, Barrier, Pause]


@dataclass(frozen=True)
class PatternConfig:
    """Shared knobs of the pattern generators (sizes in bytes, times in µs).

    ``arrival_process``: ``"uniform"`` draws inter-arrivals from
    ``U(0, interarrival_max_us)`` (the paper's Figure 3 process),
    ``"poisson"`` is exponential with the same mean, and ``"fixed"`` spaces
    records exactly ``interarrival_max_us / 2`` apart — the same offered
    load as the other two, jitter-free.  ``interarrival_max_us=0`` packs
    every record at t=0 (a pure burst).

    ``lba_base_bytes`` shifts the whole pattern to a namespaced window
    ``[lba_base_bytes, lba_base_bytes + region_bytes)`` of the device's
    address space — the multi-tenant hook (:mod:`repro.fleet` gives each
    tenant a disjoint base inside one device).  It must be slot-aligned (a
    multiple of ``request_bytes``); the default 0 leaves every existing
    pattern byte-identical, and the base never feeds the RNG streams, so a
    tenant's *relative* trace is invariant under relocation.
    """

    count: int = 1000
    region_bytes: int = 64 << 20
    request_bytes: int = 4096
    read_fraction: float = 0.0
    interarrival_max_us: float = 100.0
    arrival_process: str = "uniform"
    priority_fraction: float = 0.0
    seed: int = 42
    lba_base_bytes: int = 0

    def __post_init__(self) -> None:
        if self.arrival_process not in ("uniform", "poisson", "fixed"):
            raise ValueError(
                f"arrival_process must be 'uniform', 'poisson', or 'fixed', "
                f"got {self.arrival_process!r}"
            )
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.request_bytes <= 0 or self.request_bytes % 512:
            raise ValueError("request_bytes must be a positive multiple of 512")
        if self.region_bytes < self.request_bytes:
            raise ValueError("region must hold at least one request")
        for name in ("read_fraction", "priority_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.lba_base_bytes < 0 or self.lba_base_bytes % self.request_bytes:
            raise ValueError(
                f"lba_base_bytes ({self.lba_base_bytes}) must be a "
                f"non-negative multiple of request_bytes ({self.request_bytes})"
            )

    @property
    def slots(self) -> int:
        """Request-sized slots the region holds."""
        return self.region_bytes // self.request_bytes


def _emit(config: PatternConfig, name: str, next_slot) -> Iterator[TraceRecord]:
    """Shared emission loop: arrivals, read/write mix, and priority tagging
    around a pattern-specific ``next_slot(i) -> slot`` address source."""
    mix_rng = stream(config.seed, f"pattern.{name}.mix")
    arrival_rng = stream(config.seed, f"pattern.{name}.arrivals")
    priority_rng = stream(config.seed, f"pattern.{name}.priority")

    request_bytes = config.request_bytes
    base = config.lba_base_bytes
    read_fraction = config.read_fraction
    priority_fraction = config.priority_fraction
    gap = config.interarrival_max_us
    poisson = config.arrival_process == "poisson"
    fixed = config.arrival_process == "fixed"
    rate = 2.0 / gap if poisson and gap > 0 else 0.0
    fixed_gap = gap / 2.0
    mix_random = mix_rng.random
    priority_random = priority_rng.random
    arrival_uniform = arrival_rng.uniform
    arrival_expovariate = arrival_rng.expovariate
    read_op, write_op = TraceOp.READ, TraceOp.WRITE

    now = 0.0
    for i in range(config.count):
        if gap > 0:
            if poisson:
                now += arrival_expovariate(rate)
            elif fixed:
                now += fixed_gap
            else:
                now += arrival_uniform(0.0, gap)
        op = read_op if mix_random() < read_fraction else write_op
        priority = (
            1
            if priority_fraction > 0 and priority_random() < priority_fraction
            else 0
        )
        yield TraceRecord(now, op, base + next_slot(i) * request_bytes,
                          request_bytes, priority)


def iter_sequential(config: PatternConfig,
                    start_slot: int = 0) -> Iterator[TraceRecord]:
    """Ascending sweep from ``start_slot``, wrapping at the region end."""
    slots = config.slots
    if not 0 <= start_slot < slots:
        raise ValueError(f"start_slot must be in [0, {slots}), got {start_slot}")
    return _emit(config, "sequential",
                 lambda i: (start_slot + i) % slots)


def iter_random(config: PatternConfig) -> Iterator[TraceRecord]:
    """Uniform-random slot per record."""
    randrange = stream(config.seed, "pattern.random.addresses").randrange
    slots = config.slots
    return _emit(config, "random", lambda i: randrange(slots))


def strided_period(config: PatternConfig, stride_bytes: int) -> int:
    """Records until a strided pattern revisits its start slot:
    ``slots / gcd(stride_slots, slots)``."""
    slots = config.slots
    step = stride_bytes // config.request_bytes
    return slots // gcd(step % slots or slots, slots)


def iter_strided(config: PatternConfig, stride_bytes: int,
                 start_slot: int = 0) -> Iterator[TraceRecord]:
    """Arithmetic slot progression: record *i* lands on
    ``(start + i * stride_slots) % slots``.  ``stride_bytes`` must be a
    positive multiple of ``request_bytes``; the pattern cycles with period
    :func:`strided_period`."""
    if stride_bytes <= 0 or stride_bytes % config.request_bytes:
        raise ValueError(
            f"stride ({stride_bytes}) must be a positive multiple of the "
            f"request size ({config.request_bytes})"
        )
    slots = config.slots
    step = stride_bytes // config.request_bytes
    if not 0 <= start_slot < slots:
        raise ValueError(f"start_slot must be in [0, {slots}), got {start_slot}")
    return _emit(config, "strided",
                 lambda i: (start_slot + i * step) % slots)


def iter_snake(config: PatternConfig,
               window_bytes: int) -> Iterator[TraceRecord]:
    """A creeping window of live data (pure write + trim; ``read_fraction``
    must be 0): record *i* writes slot ``i % slots``, and once the window is
    full each write is followed — at the same timestamp — by a FREE of the
    slot ``window`` behind it.  Live data therefore stays exactly
    ``window_bytes`` while the pattern snakes through the whole region; on a
    trim-processing device the freed slots never cost a cleaning copy (the
    paper's informed cleaning, §3.5).

    Yields ``count`` WRITE records plus ``max(0, count - window_slots)``
    interleaved FREE records.
    """
    if config.read_fraction != 0.0:
        raise ValueError("snake is a write+trim pattern; read_fraction must be 0")
    slots = config.slots
    window_slots = window_bytes // config.request_bytes
    if window_slots <= 0 or window_bytes % config.request_bytes:
        raise ValueError(
            f"window ({window_bytes}) must be a positive multiple of the "
            f"request size ({config.request_bytes})"
        )
    if window_slots >= slots:
        raise ValueError(
            f"window ({window_slots} slots) must be smaller than the region "
            f"({slots} slots)"
        )

    def generate() -> Iterator[TraceRecord]:
        arrival_rng = stream(config.seed, "pattern.snake.arrivals")
        priority_rng = stream(config.seed, "pattern.snake.priority")
        request_bytes = config.request_bytes
        base = config.lba_base_bytes
        priority_fraction = config.priority_fraction
        gap = config.interarrival_max_us
        poisson = config.arrival_process == "poisson"
        fixed = config.arrival_process == "fixed"
        rate = 2.0 / gap if poisson and gap > 0 else 0.0
        write_op, free_op = TraceOp.WRITE, TraceOp.FREE

        now = 0.0
        for i in range(config.count):
            if gap > 0:
                if poisson:
                    now += arrival_rng.expovariate(rate)
                elif fixed:
                    now += gap / 2.0
                else:
                    now += arrival_rng.uniform(0.0, gap)
            priority = (
                1
                if priority_fraction > 0
                and priority_rng.random() < priority_fraction
                else 0
            )
            yield TraceRecord(now, write_op,
                              base + (i % slots) * request_bytes,
                              request_bytes, priority)
            if i >= window_slots:
                tail = (i - window_slots) % slots
                yield TraceRecord(now, free_op, base + tail * request_bytes,
                                  request_bytes, 0)

    return generate()


def iter_zipf(config: PatternConfig, theta: float = 1.0,
              scramble: bool = True) -> Iterator[TraceRecord]:
    """Zipf-popular slots: the rank-*r* slot is drawn with probability
    proportional to ``1 / r**theta``.  ``scramble`` (default) maps ranks
    onto the region through a seeded permutation so the hot slots scatter
    instead of clustering at offset 0.  The rank table is O(region slots),
    built once; each draw is one bisect."""
    if theta <= 0.0:
        raise ValueError(f"theta must be positive, got {theta}")
    slots = config.slots
    cumulative: List[float] = []
    total = 0.0
    for rank in range(1, slots + 1):
        total += 1.0 / rank ** theta
        cumulative.append(total)
    rank_to_slot = list(range(slots))
    if scramble:
        stream(config.seed, "pattern.zipf.permute").shuffle(rank_to_slot)
    draw = stream(config.seed, "pattern.zipf.addresses").random

    def next_slot(i: int) -> int:
        rank = bisect_right(cumulative, draw() * total)
        if rank >= slots:  # guard the floating-point top edge
            rank = slots - 1
        return rank_to_slot[rank]

    return _emit(config, "zipf", next_slot)


def iter_hot_cold(config: PatternConfig, hot_space_fraction: float = 0.2,
                  hot_access_fraction: float = 0.8) -> Iterator[TraceRecord]:
    """Skewed split: the first ``hot_space_fraction`` of the region's slots
    (the hot set) receives ``hot_access_fraction`` of the accesses; both
    halves are uniform internally.  The textbook 20/80 skew is the
    default."""
    for name, value in (("hot_space_fraction", hot_space_fraction),
                        ("hot_access_fraction", hot_access_fraction)):
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    slots = config.slots
    hot_slots = max(1, int(slots * hot_space_fraction))
    cold_slots = slots - hot_slots
    if cold_slots <= 0:
        raise ValueError(
            f"hot set ({hot_slots} slots) leaves no cold slots in a "
            f"{slots}-slot region"
        )
    rng = stream(config.seed, "pattern.hot_cold.addresses")
    random_, randrange = rng.random, rng.randrange

    def next_slot(i: int) -> int:
        if random_() < hot_access_fraction:
            return randrange(hot_slots)
        return hot_slots + randrange(cold_slots)

    return _emit(config, "hot_cold", next_slot)


def compose(*phases: Iterable[PatternRecord], barrier: bool = True,
            pause_us: float = 0.0) -> Iterator[PatternRecord]:
    """Chain pattern streams into one suite.

    Between consecutive phases a :class:`Barrier` is emitted (unless
    ``barrier=False``) and then a :class:`Pause` of ``pause_us`` (when
    positive).  Each phase keeps its own relative timestamps —
    :func:`repro.workloads.driver.replay_pattern` restarts the clock at
    every barrier, so phases compose without any re-stamping.

    Phases may themselves contain control records, so suites nest:
    ``compose(compose(a, b), c)`` behaves exactly like
    ``compose(a, b, c)``.
    """
    if pause_us < 0:
        raise ValueError(f"pause_us must be >= 0, got {pause_us}")
    last = len(phases) - 1
    for index, phase in enumerate(phases):
        yield from phase
        if index != last:
            if barrier:
                yield Barrier(label=f"phase-{index}")
            if pause_us > 0:
                yield Pause(pause_us)

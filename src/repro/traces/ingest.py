"""Real block traces join the zoo: MSR-Cambridge-style CSV ingest.

The MSR-Cambridge enterprise traces (SNIA IOTTA; Narayanan et al., FAST'08)
are the de-facto interchange format for block-level workloads:

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
    128166372003061629,usr,0,Read,7014609920,24576,41286

with ``Timestamp`` in Windows filetime ticks (100 ns), ``Offset``/``Size``
in bytes, and ``Type`` spelled ``Read``/``Write``.  :func:`iter_msr_csv`
streams such a file into :class:`~repro.traces.record.TraceRecord`\\ s one
row at a time — O(1) memory, like every generator in this package — while

* rebasing timestamps so the first row lands at t=0 (filetime epochs are
  1601-relative; absolute values are meaningless to the simulator),
* aligning each request outward to ``align_bytes`` so it covers the
  original byte range on simulator-page boundaries, and
* optionally **remapping** offsets into a target device region
  (``region_bytes``): traces are captured from volumes far larger than a
  simulated element group, so offsets fold modulo the region (preserving
  alignment) and sizes clamp to the region end.  Folding preserves
  locality structure at region scale — sequential runs stay sequential,
  hot addresses stay hot — which is what replaying "the same workload on a
  smaller device" means.

Malformed rows raise :class:`ValueError` carrying ``path:line`` context;
a trace with a corrupt row is a broken artifact, not something to skip
silently.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.traces.record import TraceOp, TraceRecord

__all__ = ["iter_msr_csv", "load_msr_csv", "FILETIME_TICKS_PER_US"]

#: Windows filetime resolution: 100 ns ticks, ten per microsecond
FILETIME_TICKS_PER_US = 10.0

_TYPE_OF = {"read": TraceOp.READ, "write": TraceOp.WRITE,
            "r": TraceOp.READ, "w": TraceOp.WRITE}


def iter_msr_csv(
    path: Union[str, Path],
    region_bytes: Optional[int] = None,
    align_bytes: int = 4096,
    disk: Optional[int] = None,
    time_scale: float = 1.0,
) -> Iterator[TraceRecord]:
    """Stream an MSR-Cambridge-style CSV trace as ``TraceRecord``\\ s.

    ``region_bytes``
        Target device region: offsets fold modulo the region (aligned) and
        sizes clamp to its end.  ``None`` keeps raw volume offsets — only
        useful when the simulated device is at least as large as the
        traced volume.
    ``align_bytes``
        Requests are widened outward to cover the original ``[offset,
        offset+size)`` range on this alignment (the simulator's logical
        page size, typically).
    ``disk``
        When set, keep only rows whose ``DiskNumber`` matches (MSR files
        interleave several volumes per host).
    ``time_scale``
        Extra multiplier on the (already µs) rebased timestamps — e.g.
        ``0.01`` plays a trace back 100x faster.  This composes with
        ``replay_trace(..., time_scale=...)``; having it here too lets a
        pre-scaled trace be saved/analyzed as such.

    Timestamps rebase so the first *kept* row is t=0.  Rows are expected
    in capture order (MSR traces are time-sorted); out-of-order rows are
    passed through as-is and it is the replayer's window that bounds how
    much disorder is tolerable.
    """
    if align_bytes <= 0:
        raise ValueError(f"align_bytes must be positive, got {align_bytes}")
    if region_bytes is not None:
        span = (region_bytes // align_bytes) * align_bytes
        if span <= 0:
            raise ValueError(
                f"region ({region_bytes} bytes) must hold at least one "
                f"aligned request ({align_bytes} bytes)"
            )
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")

    def malformed(lineno: int, why: str) -> ValueError:
        return ValueError(f"{path}:{lineno}: {why}")

    with open(path, "r", encoding="utf-8") as fh:
        origin: Optional[int] = None
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(",")
            if len(fields) < 6:
                if lineno == 1 and "timestamp" in line.lower():
                    continue  # a header row, not data
                raise malformed(
                    lineno, f"expected >= 6 comma-separated fields "
                            f"(Timestamp,Hostname,DiskNumber,Type,Offset,"
                            f"Size[,ResponseTime]), got {len(fields)}")
            if lineno == 1 and "timestamp" in fields[0].lower():
                continue  # header row with the full column list
            try:
                ticks = int(fields[0])
                disk_number = int(fields[2])
                offset = int(fields[4])
                size = int(fields[5])
            except ValueError:
                raise malformed(
                    lineno, f"non-integer Timestamp/DiskNumber/Offset/Size "
                            f"in {line!r}") from None
            if disk is not None and disk_number != disk:
                continue
            op = _TYPE_OF.get(fields[3].strip().lower())
            if op is None:
                raise malformed(
                    lineno, f"unknown Type {fields[3]!r} "
                            f"(expected Read or Write)")
            if size <= 0 or offset < 0:
                raise malformed(
                    lineno, f"offset/size out of range "
                            f"(offset={offset}, size={size})")
            if origin is None:
                origin = ticks
            elif ticks < origin:
                raise malformed(
                    lineno, f"timestamp {ticks} precedes the first row's "
                            f"{origin}; trace is not in capture order")
            time_us = (ticks - origin) / FILETIME_TICKS_PER_US * time_scale

            # widen outward onto the alignment grid, then fold into the
            # region (fold first would let widening spill past the end)
            aligned_offset = (offset // align_bytes) * align_bytes
            end = offset + size
            aligned_size = (-(-(end - aligned_offset) // align_bytes)
                            * align_bytes)
            if region_bytes is not None:
                aligned_offset %= span
                aligned_size = min(aligned_size,
                                   region_bytes - aligned_offset)
            yield TraceRecord(time_us, op, aligned_offset, aligned_size, 0)


def load_msr_csv(path: Union[str, Path], **kwargs) -> List[TraceRecord]:
    """Eager convenience wrapper around :func:`iter_msr_csv`."""
    return list(iter_msr_csv(path, **kwargs))

"""Trace (de)serialization: a simple one-record-per-line text format.

    # time_us op offset size [priority]
    0.0 W 0 4096 0
    125.4 R 8192 4096 1
    220.9 F 0 4096

Comment lines start with ``#``.  The format is deliberately trivial so
traces can be inspected, diffed, and produced by other tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from repro.traces.record import TraceOp, TraceRecord

__all__ = ["save_trace", "load_trace"]


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records to *path*; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# time_us op offset size priority\n")
        for record in records:
            fh.write(
                f"{record.time_us:.3f} {record.op.value} "
                f"{record.offset} {record.size} {record.priority}\n"
            )
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a trace file written by :func:`save_trace`."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (4, 5):
                raise ValueError(f"{path}:{lineno}: expected 4-5 fields, got {len(parts)}")
            time_us = float(parts[0])
            op = TraceOp.parse(parts[1])
            offset = int(parts[2])
            size = int(parts[3])
            priority = int(parts[4]) if len(parts) == 5 else 0
            records.append(TraceRecord(time_us, op, offset, size, priority))
    return records

"""Drivers that push traces or generated streams through a device.

* :func:`replay_trace` — open-loop: every record is submitted at its
  timestamp regardless of completions (the device's queue absorbs bursts).
  This is how the paper's priority/cleaning experiments load the SSD.
* :class:`ClosedLoopDriver` — keeps a fixed number of requests outstanding,
  drawing the next operation from a generator; used by the
  microbenchmarks (Table 2) and the SWTF experiment.

Streaming replay
----------------
The seed ``replay_trace`` pre-scheduled one event per trace record, so a
million-record trace put a million events in the heap before the first one
ran.  The replay now *streams*: a bounded window of upcoming records
(default :data:`REPLAY_WINDOW`) is held in a driver-local ``(time, feed
order, record)`` heap, and exactly **one** reusable front-lane event stays
armed at the head record's timestamp
(:meth:`repro.sim.engine.Simulator.reschedule_at_front`).  Each firing
submits every record due at that instant and re-arms at the new head; each
submitted record pulls one replacement from the iterator (a fused
``heapreplace``), so window occupancy — and total replay state — is
O(window) regardless of trace length, and the simulator heap carries a
single replay entry instead of thousands.

Ordering is identical to pre-scheduling the whole trace: the front lane
wins every same-timestamp tie against simulation-internal events, arrivals
keep record order among themselves, and consecutive same-instant front-lane
events admit nothing between them — which is what makes folding a
same-timestamp group into one firing (and into one
:meth:`repro.device.ssd.SSD.submit_batch` call, when the device has the
batched front door) indistinguishable from the seed's one-event-per-record
scheme, apart from ``events_run``.  The only requirement streaming adds is
that record timestamps be sorted to within the window (every generator in
:mod:`repro.traces` emits sorted traces); pass ``window=None`` to fall back
to full pre-scheduling for pathological inputs.

Requests themselves are slab-recycled: each replay (and each
``ClosedLoopDriver``) owns an :class:`repro.device.interface.IORequestPool`
and releases every request inside its completion callback, so steady-state
replay allocates no request objects, no dispatch events, and no completion
closures (the SSD hangs reusable adapters off the pooled request; see
``SSD._arm_dispatch``).  The pool is scoped to the run on purpose: its
slab retains those device-bound adapters, so a process-global pool would
pin retired devices alive.

Streaming results
-----------------
A streamed *trace* still produced an O(trace) *result*: ``WorkloadResult``
keeps one :class:`~repro.device.interface.Completion` per record, which is
what the paper's tables want at experiment scale but caps replay length in
memory.  ``replay_trace(..., sink=...)`` is the constant-memory mode: pass
any :class:`ResultSink` — typically a :class:`StreamingResult`, which folds
each completion into per-(op, priority) aggregates
(:class:`repro.sim.stats.ClassAggregate`: count, bytes, exact mean/max, a
bounded-relative-error quantile sketch, and a seeded reservoir sample) and
answers the same ``latency``/``bandwidth_mb_s``/``count`` queries as
``WorkloadResult``.  The default remains the list-of-completions mode, so
existing call sites and golden snapshots are untouched; the *simulation* is
identical either way — only what is retained about it changes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heapify, heappop, heapreplace
from itertools import islice
from typing import (Callable, Deque, Dict, Iterable, List, Optional, Protocol,
                    Tuple, Union)

from repro.device.interface import (Completion, IORequest, IORequestPool,
                                    OpType)
from repro.sim.engine import Event, Simulator
from repro.sim.stats import (ClassAggregate, FLUSH_THRESHOLD, LatencyRecorder,
                             LatencySummary, QuantileSketch)
from repro.traces.patterns import Barrier, Pause, PatternRecord
from repro.traces.record import TraceOp, TraceRecord
from repro.units import mb_per_s

#: TraceOp -> OpType, resolved once (the replay loop is per-record hot)
_OP_OF = {trace_op: trace_op.to_op_type() for trace_op in TraceOp}

__all__ = ["WorkloadResult", "ResultSink", "StreamingResult", "ShardedResult",
           "replay_trace", "replay_pattern", "ClosedLoopDriver",
           "REPLAY_WINDOW"]

#: default bound on concurrently-scheduled future submissions in
#: :func:`replay_trace` (heap memory is O(window), not O(trace length))
REPLAY_WINDOW = 4096


@dataclass
class WorkloadResult:
    """Latency/bandwidth summary of one driven workload."""

    completions: List[Completion] = field(default_factory=list)
    elapsed_us: float = 0.0

    def _recorder(self, predicate: Callable[[Completion], bool]) -> LatencyRecorder:
        recorder = LatencyRecorder()
        for completion in self.completions:
            if completion.error is None and predicate(completion):
                recorder.record(completion.response_us)
        return recorder

    @property
    def errors(self) -> Dict[str, int]:
        """Error completions by kind (empty when every request succeeded)."""
        counts: Dict[str, int] = {}
        for completion in self.completions:
            if completion.error is not None:
                counts[completion.error] = counts.get(completion.error, 0) + 1
        return counts

    def latency(
        self,
        op: Optional[OpType] = None,
        priority: Optional[bool] = None,
    ) -> LatencySummary:
        """Latency summary filtered by op and/or priority class."""

        def match(completion: Completion) -> bool:
            if op is not None and completion.op is not op:
                return False
            if priority is not None and (completion.priority > 0) != priority:
                return False
            return True

        return self._recorder(match).summary()

    @property
    def count(self) -> int:
        return len(self.completions)

    def bandwidth_mb_s(self, op: Optional[OpType] = None) -> float:
        nbytes = sum(
            c.size
            for c in self.completions
            if op is None or c.op is op
        )
        return mb_per_s(nbytes, self.elapsed_us)


class ResultSink(Protocol):
    """Anything that can absorb completions from a driver, one at a time.

    ``record`` is called once per finished request, on the simulator clock,
    with the completed :class:`~repro.device.interface.IORequest`; the sink
    must read what it needs immediately and hold no reference (the request
    object is driver-owned and garbage the moment the callback returns —
    retaining it would defeat the bounded-memory contract).  The driver
    stamps ``elapsed_us`` when the replay drains.
    """

    elapsed_us: float

    def record(self, request: IORequest) -> None: ...


class StreamingResult:
    """O(1)-memory replay result: the :class:`ResultSink` most callers want.

    Keeps one :class:`~repro.sim.stats.ClassAggregate` per (op, priority)
    traffic class — at most eight, regardless of trace length — and
    answers the same queries as :class:`WorkloadResult`:

    * ``latency(op=..., priority=...)`` — :class:`LatencySummary` whose
      count/mean/max are exact and whose percentiles carry the sketch's
      bounded relative error (``alpha``, default 1%),
    * ``bandwidth_mb_s(op=...)``, ``count``, ``elapsed_us``.

    Reservoir seeds derive deterministically from ``seed`` per class, so a
    replay is reproducible sample-for-sample.
    """

    #: stable per-class seed offsets (enum hash order is not deterministic)
    _OP_ORDER = {op: i for i, op in enumerate(OpType)}

    def __init__(self, alpha: float = 0.01, reservoir_k: int = 1024,
                 seed: int = 0x5EED) -> None:
        self._alpha = alpha
        self._reservoir_k = reservoir_k
        self._seed = seed
        self._classes: Dict[Tuple[OpType, bool], ClassAggregate] = {}
        #: key -> (aggregate, buffer, recorder.flush): the record() hot
        #: path appends the raw latency to the class recorder's flat
        #: buffer and lets the numpy batch kernels fold a whole window at
        #: once (buckets/sample identical to per-add recording; see
        #: :class:`repro.sim.stats.StreamingLatencyRecorder`)
        self._fast: Dict[Tuple[OpType, bool], tuple] = {}
        #: error completions by kind (e.g. {"readonly": 12})
        self.errors: Dict[str, int] = {}
        self.elapsed_us = 0.0

    def record(self, request: IORequest) -> None:
        error = request.error
        if error is not None:
            # errored requests move no data and carry no meaningful
            # latency; tally them separately
            self.errors[error] = self.errors.get(error, 0) + 1
            return
        key = (request.op, request.priority > 0)
        entry = self._fast.get(key)
        if entry is None:
            class_seed = (self._seed * 31
                          + self._OP_ORDER[request.op] * 2 + key[1])
            aggregate = self._classes[key] = ClassAggregate(
                self._alpha, self._reservoir_k, class_seed, buffered=True
            )
            latencies = aggregate.latencies
            entry = self._fast[key] = (
                aggregate, latencies.buffer, latencies.flush
            )
        aggregate, buffer, flush = entry
        aggregate.bytes += request.size
        buffer.append(request.complete_us - request.submit_us)
        if len(buffer) >= FLUSH_THRESHOLD:
            flush()

    def finalize(self) -> None:
        """Fold any buffered samples into the sketches/reservoirs.  The
        drivers call this when a replay drains; reads through the recorder
        API flush on their own, so calling it is belt-and-braces."""
        for aggregate in self._classes.values():
            aggregate.latencies.flush()

    # -- the WorkloadResult query API ------------------------------------

    @property
    def count(self) -> int:
        return sum(agg.count for agg in self._classes.values())

    def class_items(self) -> List[Tuple[Tuple[OpType, bool], ClassAggregate]]:
        """``((op, priority), ClassAggregate)`` pairs in canonical (op
        order, priority) order — the iteration order mergers and
        fingerprints must use so results do not depend on which class a
        replay happened to touch first."""
        return sorted(
            self._classes.items(),
            key=lambda item: (self._OP_ORDER[item[0][0]], item[0][1]),
        )

    def latency(
        self,
        op: Optional[OpType] = None,
        priority: Optional[bool] = None,
    ) -> LatencySummary:
        """Latency summary filtered by op and/or priority class."""
        matched = [
            aggregate
            for (key_op, key_pri), aggregate in self.class_items()
            if (op is None or key_op is op)
            and (priority is None or key_pri == priority)
        ]
        if not matched:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        if len(matched) == 1:
            return matched[0].latencies.summary()
        merged = QuantileSketch(self._alpha)
        for aggregate in matched:
            aggregate.latencies.flush()
            merged.merge(aggregate.latencies.sketch)
        return merged.summary()

    def bandwidth_mb_s(self, op: Optional[OpType] = None) -> float:
        nbytes = sum(
            aggregate.bytes
            for (key_op, _), aggregate in self._classes.items()
            if op is None or key_op is op
        )
        return mb_per_s(nbytes, self.elapsed_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StreamingResult n={self.count} "
                f"classes={len(self._classes)}>")


class ShardedResult:
    """Per-shard replay entry: one device, several co-resident streams.

    A :class:`ResultSink` that routes each completion to one of several
    child sinks — ``classify(request) -> index`` picks the child, typically
    by recovering the owning shard from ``request.offset`` (the fleet layer
    gives every tenant a disjoint LBA namespace inside the device, so a
    bisect over the namespace bases is exact).  The *simulation* is
    untouched: requests from all shards share the device's queue,
    scheduler, FTL, and cleaner — which is precisely what makes cross-shard
    interference measurable — only the bookkeeping is split.

    ``elapsed_us`` is stamped by the driver on the sharded sink and
    propagated to every child at :meth:`finalize` (children of one device
    replay share the device's clock span), so per-child bandwidth queries
    work unchanged.
    """

    __slots__ = ("sinks", "_classify", "elapsed_us")

    def __init__(self, sinks: List[ResultSink],
                 classify: Callable[[IORequest], int]) -> None:
        if not sinks:
            raise ValueError("ShardedResult needs at least one child sink")
        self.sinks = list(sinks)
        self._classify = classify
        self.elapsed_us = 0.0

    def record(self, request: IORequest) -> None:
        self.sinks[self._classify(request)].record(request)

    def finalize(self) -> None:
        for sink in self.sinks:
            sink.elapsed_us = self.elapsed_us
            finalize = getattr(sink, "finalize", None)
            if finalize is not None:
                finalize()

    @property
    def count(self) -> int:
        return sum(sink.count for sink in self.sinks)

    @property
    def errors(self) -> Dict[str, int]:
        """Error completions by kind, aggregated over the children."""
        merged: Dict[str, int] = {}
        for sink in self.sinks:
            for kind, n in getattr(sink, "errors", {}).items():
                merged[kind] = merged.get(kind, 0) + n
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardedResult shards={len(self.sinks)} n={self.count}>"


def replay_trace(
    sim: Simulator,
    device,
    records: Iterable[TraceRecord],
    time_scale: float = 1.0,
    collect_frees: bool = False,
    window: Optional[int] = REPLAY_WINDOW,
    sink: Optional[ResultSink] = None,
) -> Union[WorkloadResult, ResultSink]:
    """Open-loop replay: submit each record at ``time_us * time_scale``.

    Returns after the event queue drains.  READ/WRITE completions are
    collected (FREEs too with ``collect_frees``); ``elapsed_us`` spans first
    submission to last completion.

    At most ``window`` future submissions are scheduled at once (see the
    module docstring); ``window=None`` pre-schedules the whole trace, which
    accepts arbitrarily unsorted timestamps at O(trace) heap cost.

    With ``sink`` (any :class:`ResultSink`, e.g. :class:`StreamingResult`)
    completions stream into the sink instead of accumulating as a list, and
    the sink is returned; result memory is then whatever the sink keeps —
    O(1) for :class:`StreamingResult` — so replay length is bounded by
    patience, not RAM.  Pair it with a generator of records (e.g.
    :func:`repro.traces.synthetic.iter_synthetic`) to keep the trace side
    O(1) as well.
    """
    result: Union[WorkloadResult, ResultSink]
    # one pool per replay: recycling pays off *within* a run (thousands of
    # residencies over ~window live requests), and scoping the slab here
    # lets the device graph its retained adapters bind be collected with
    # the run instead of being pinned by a process-global slab
    pool = IORequestPool()
    release = pool.release
    if sink is None:
        result = WorkloadResult()
        completions = result.completions
        completion_of = Completion.of

        def on_complete(request: IORequest) -> None:
            op = request.op
            if op is OpType.READ or op is OpType.WRITE or collect_frees:
                completions.append(completion_of(request))
            release(request)
    else:
        result = sink
        sink_record = sink.record

        def on_complete(request: IORequest) -> None:
            op = request.op
            if op is OpType.READ or op is OpType.WRITE or collect_frees:
                sink_record(request)
            release(request)

    start = sim.now
    acquire = pool.acquire
    op_of = _OP_OF

    def build(record: TraceRecord) -> IORequest:
        """One pooled request per record (the only construction site —
        the per-record, batched, and pre-scheduled paths all go through
        here, so they cannot drift apart)."""
        return acquire(op_of[record.op], record.offset, record.size,
                       record.priority, on_complete)

    if window is None:
        def submit(record: TraceRecord) -> None:
            device.submit(build(record))

        for record in records:
            sim.schedule_at_front(
                start + record.time_us * time_scale, submit, record
            )
    else:
        if window <= 0:
            raise ValueError(f"window must be positive or None, got {window}")
        # Streaming core: the window of upcoming records lives in a local
        # (time, feed-order, record) structure and ONE reusable front-lane
        # event stays armed at the head record's timestamp.  Firing submits
        # every record due at that instant — back-to-back front-lane events
        # at one timestamp admit nothing between them, so folding the group
        # into one firing preserves the exact pre-scheduling order — then
        # re-arms at the new head.  The simulator heap holds O(1) replay
        # entries instead of O(window), and groups of same-instant records
        # ride the device's batched front door when it has one.
        #
        # Traces are overwhelmingly time-sorted (generators emit monotone
        # timestamps), so the window starts as a plain deque — one tail
        # compare plus append/popleft per record, no O(log window) sifts —
        # and degrades to a binary heap the first time a record lands
        # behind the window tail.  A time-sorted, feed-ordered tuple list
        # is already a valid min-heap, so degrading is a copy, not a sort,
        # and submission order is identical in both modes.
        def unsorted_error(at: float, now: float) -> ValueError:
            return ValueError(
                f"trace timestamps unsorted beyond the replay window "
                f"({window}): record time {at} is before the clock "
                f"{now}; sort the trace or pass window=None"
            )

        iterator = iter(records)
        buffer: Deque[tuple] = deque()
        heap: List[tuple] = []
        use_heap = False
        n = 0
        last_at = -1.0  # timestamps are >= sim.now >= 0
        for record in islice(iterator, window):
            at = start + record.time_us * time_scale
            if at < sim.now:
                raise unsorted_error(at, sim.now)
            if at < last_at:
                use_heap = True
            else:
                last_at = at
            buffer.append((at, n, record))
            n += 1
        if use_heap:
            heap = list(buffer)
            buffer.clear()
            heapify(heap)
        device_submit = device.submit
        submit_batch = getattr(device, "submit_batch", None)
        feeder = Event(0.0, 0, None, ())
        feeder.alive = False
        rearm = sim.reschedule_at_front

        def fire(heappop=heappop, heapreplace=heapreplace) -> None:
            nonlocal n, use_heap
            now = sim.now
            batch: Optional[List[TraceRecord]] = None
            window_q = heap if use_heap else buffer
            # pop the due head with its refill fused in (one refill per
            # popped record keeps the window full; record generators are
            # pure, so pulling just before the pop is unobservable).  In
            # heap mode heapreplace does one sift where pop-then-push
            # would do two.
            nxt = next(iterator, None)
            if nxt is None:
                record = (heappop(heap) if use_heap else buffer.popleft())[2]
            else:
                at = start + nxt.time_us * time_scale
                if at < now:
                    raise unsorted_error(at, now)
                if use_heap:
                    record = heapreplace(heap, (at, n, nxt))[2]
                elif not buffer or at >= buffer[-1][0]:
                    buffer.append((at, n, nxt))
                    record = buffer.popleft()[2]
                else:
                    use_heap = True
                    heap[:] = buffer
                    buffer.clear()
                    window_q = heap
                    record = heapreplace(heap, (at, n, nxt))[2]
                n += 1
            while window_q and window_q[0][0] <= now:
                if batch is None:
                    batch = [record]
                nxt = next(iterator, None)
                if nxt is None:
                    batch.append(
                        (heappop(heap) if use_heap else buffer.popleft())[2])
                else:
                    at = start + nxt.time_us * time_scale
                    if at < now:
                        raise unsorted_error(at, now)
                    if use_heap:
                        batch.append(heapreplace(heap, (at, n, nxt))[2])
                    elif not buffer or at >= buffer[-1][0]:
                        buffer.append((at, n, nxt))
                        batch.append(buffer.popleft()[2])
                    else:
                        use_heap = True
                        heap[:] = buffer
                        buffer.clear()
                        window_q = heap
                        batch.append(heapreplace(heap, (at, n, nxt))[2])
                    n += 1
            if batch is None:
                device_submit(build(record))
            else:
                requests = [build(r) for r in batch]
                if submit_batch is not None:
                    submit_batch(requests)
                else:
                    for request in requests:
                        device_submit(request)
            if window_q:
                rearm(feeder, window_q[0][0])

        feeder.fn = fire
        if buffer or heap:
            sim.reschedule_at_front(feeder, (heap if use_heap
                                             else buffer)[0][0])
    sim.run_until_idle()
    result.elapsed_us = sim.now - start
    finalize = getattr(result, "finalize", None)
    if finalize is not None:
        finalize()
    return result


def replay_pattern(
    sim: Simulator,
    device,
    records: Iterable["PatternRecord"],
    time_scale: float = 1.0,
    collect_frees: bool = False,
    window: Optional[int] = REPLAY_WINDOW,
    sink: Optional[ResultSink] = None,
) -> ResultSink:
    """Open-loop replay of a pattern stream with control records.

    Accepts what :func:`replay_trace` does plus the two control records of
    :mod:`repro.traces.patterns` interleaved in the stream:

    * :class:`~repro.traces.patterns.Barrier` — stop admitting, run the
      device to idle, then resume; the records after the barrier restart
      their timeline at the drain instant (each phase of a
      :func:`~repro.traces.patterns.compose` suite carries its own relative
      timestamps).
    * :class:`~repro.traces.patterns.Pause` — shift every later record of
      the current segment ``delta_us`` into the future (idle-time
      injection; ``time_scale`` applies to the shifted timestamps like any
      others).

    Implementation: the stream splits into segments at barriers and each
    segment is fed to :func:`replay_trace` — whose trailing
    ``run_until_idle()`` *is* the drain — so the per-record hot path is
    exactly the streaming replay core, unchanged.  Pauses re-stamp
    records on the way in (zero cost while no pause has occurred).

    The result is always a sink (default :class:`StreamingResult`) shared
    across segments; ``elapsed_us`` spans the whole suite, drains
    included.
    """
    if sink is None:
        sink = StreamingResult()
    iterator = iter(records)
    start = sim.now
    done = False

    def segment() -> Iterable[TraceRecord]:
        nonlocal done
        offset = 0.0
        for item in iterator:
            kind = type(item)
            if kind is Barrier:
                return
            if kind is Pause:
                offset += item.delta_us
            elif offset:
                yield TraceRecord(item.time_us + offset, item.op,
                                  item.offset, item.size, item.priority)
            else:
                yield item
        done = True

    while not done:
        replay_trace(sim, device, segment(), time_scale=time_scale,
                     collect_frees=collect_frees, window=window, sink=sink)
    sink.elapsed_us = sim.now - start
    return sink


class ClosedLoopDriver:
    """Keeps ``depth`` requests outstanding until ``count`` complete.

    ``next_request`` is called for each submission and must return
    ``(op, offset, size)`` or ``(op, offset, size, priority)``.
    """

    def __init__(
        self,
        sim: Simulator,
        device,
        next_request: Callable[[int], Tuple],
        count: int,
        depth: int = 1,
        think_time_us: float = 0.0,
    ) -> None:
        if depth <= 0 or count <= 0:
            raise ValueError("depth and count must be positive")
        self.sim = sim
        self.device = device
        self.next_request = next_request
        self.count = count
        self.depth = depth
        self.think_time_us = think_time_us
        self.result = WorkloadResult()
        self._issued = 0
        self._completed = 0
        self._start_us = 0.0
        #: per-driver request slab (see replay_trace: scoping the pool to
        #: the run keeps its retained adapters from pinning the device)
        self._pool = IORequestPool()

    def run(self) -> WorkloadResult:
        self._start_us = self.sim.now
        burst = min(self.depth, self.count)
        submit_batch = getattr(self.device, "submit_batch", None)
        if submit_batch is not None and burst > 1:
            # the depth-filling burst arrives at one instant: ride the
            # batched front door (order-identical to sequential submits)
            submit_batch(self._build() for _ in range(burst))
        else:
            for _ in range(burst):
                self._issue()
        self.sim.run_until_idle()
        self.result.elapsed_us = self.sim.now - self._start_us
        return self.result

    def _build(self) -> IORequest:
        spec = self.next_request(self._issued)
        self._issued += 1
        op, offset, size = spec[:3]
        priority = spec[3] if len(spec) > 3 else 0
        return self._pool.acquire(op, offset, size, priority,
                                  self._on_complete)

    def _issue(self) -> None:
        self.device.submit(self._build())

    def _on_complete(self, request: IORequest) -> None:
        self._completed += 1
        self.result.completions.append(Completion.of(request))
        self._pool.release(request)
        if self._issued < self.count:
            if self.think_time_us > 0:
                self.sim.schedule(self.think_time_us, self._issue)
            else:
                self._issue()

"""Drivers that push traces or generated streams through a device.

* :func:`replay_trace` — open-loop: every record is submitted at its
  timestamp regardless of completions (the device's queue absorbs bursts).
  This is how the paper's priority/cleaning experiments load the SSD.
* :class:`ClosedLoopDriver` — keeps a fixed number of requests outstanding,
  drawing the next operation from a generator; used by the
  microbenchmarks (Table 2) and the SWTF experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.device.interface import Completion, IORequest, OpType
from repro.sim.engine import Simulator
from repro.sim.stats import LatencyRecorder, LatencySummary
from repro.traces.record import TraceOp, TraceRecord
from repro.units import mb_per_s

__all__ = ["WorkloadResult", "replay_trace", "ClosedLoopDriver"]


@dataclass
class WorkloadResult:
    """Latency/bandwidth summary of one driven workload."""

    completions: List[Completion] = field(default_factory=list)
    elapsed_us: float = 0.0

    def _recorder(self, predicate: Callable[[Completion], bool]) -> LatencyRecorder:
        recorder = LatencyRecorder()
        for completion in self.completions:
            if predicate(completion):
                recorder.record(completion.response_us)
        return recorder

    def latency(
        self,
        op: Optional[OpType] = None,
        priority: Optional[bool] = None,
    ) -> LatencySummary:
        """Latency summary filtered by op and/or priority class."""

        def match(completion: Completion) -> bool:
            if op is not None and completion.op is not op:
                return False
            if priority is not None and (completion.priority > 0) != priority:
                return False
            return True

        return self._recorder(match).summary()

    @property
    def count(self) -> int:
        return len(self.completions)

    def bandwidth_mb_s(self, op: Optional[OpType] = None) -> float:
        nbytes = sum(
            c.size
            for c in self.completions
            if op is None or c.op is op
        )
        return mb_per_s(nbytes, self.elapsed_us)


def replay_trace(
    sim: Simulator,
    device,
    records: Iterable[TraceRecord],
    time_scale: float = 1.0,
    collect_frees: bool = False,
) -> WorkloadResult:
    """Open-loop replay: submit each record at ``time_us * time_scale``.

    Returns after the event queue drains.  READ/WRITE completions are
    collected (FREEs too with ``collect_frees``); ``elapsed_us`` spans first
    submission to last completion.
    """
    result = WorkloadResult()
    start = sim.now

    def on_complete(request: IORequest) -> None:
        if request.op in (OpType.READ, OpType.WRITE) or collect_frees:
            result.completions.append(Completion.of(request))

    def submit(record: TraceRecord) -> None:
        device.submit(
            IORequest(
                record.op.to_op_type(),
                record.offset,
                record.size,
                priority=record.priority,
                on_complete=on_complete,
            )
        )

    for record in records:
        sim.schedule_at(start + record.time_us * time_scale, submit, record)
    sim.run_until_idle()
    result.elapsed_us = sim.now - start
    return result


class ClosedLoopDriver:
    """Keeps ``depth`` requests outstanding until ``count`` complete.

    ``next_request`` is called for each submission and must return
    ``(op, offset, size)`` or ``(op, offset, size, priority)``.
    """

    def __init__(
        self,
        sim: Simulator,
        device,
        next_request: Callable[[int], Tuple],
        count: int,
        depth: int = 1,
        think_time_us: float = 0.0,
    ) -> None:
        if depth <= 0 or count <= 0:
            raise ValueError("depth and count must be positive")
        self.sim = sim
        self.device = device
        self.next_request = next_request
        self.count = count
        self.depth = depth
        self.think_time_us = think_time_us
        self.result = WorkloadResult()
        self._issued = 0
        self._completed = 0
        self._start_us = 0.0

    def run(self) -> WorkloadResult:
        self._start_us = self.sim.now
        for _ in range(min(self.depth, self.count)):
            self._issue()
        self.sim.run_until_idle()
        self.result.elapsed_us = self.sim.now - self._start_us
        return self.result

    def _issue(self) -> None:
        spec = self.next_request(self._issued)
        self._issued += 1
        op, offset, size = spec[:3]
        priority = spec[3] if len(spec) > 3 else 0
        self.device.submit(
            IORequest(op, offset, size, priority=priority,
                      on_complete=self._on_complete)
        )

    def _on_complete(self, request: IORequest) -> None:
        self._completed += 1
        self.result.completions.append(Completion.of(request))
        if self._issued < self.count:
            if self.think_time_us > 0:
                self.sim.schedule(self.think_time_us, self._issue)
            else:
                self._issue()

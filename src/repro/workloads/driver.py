"""Drivers that push traces or generated streams through a device.

* :func:`replay_trace` — open-loop: every record is submitted at its
  timestamp regardless of completions (the device's queue absorbs bursts).
  This is how the paper's priority/cleaning experiments load the SSD.
* :class:`ClosedLoopDriver` — keeps a fixed number of requests outstanding,
  drawing the next operation from a generator; used by the
  microbenchmarks (Table 2) and the SWTF experiment.

Streaming replay
----------------
The seed ``replay_trace`` pre-scheduled one event per trace record, so a
million-record trace put a million events in the heap before the first one
ran.  The replay now *streams*: a bounded window of upcoming submissions is
kept scheduled (default :data:`REPLAY_WINDOW`), and each fired submission
feeds the next record from the iterator, so heap growth is O(window)
regardless of trace length.  Submissions ride the simulator's front lane
(:meth:`repro.sim.engine.Simulator.schedule_at_front`), which preserves the
pre-scheduling semantics exactly: a trace arrival at time *t* always runs
before any simulation-internal event at the same *t*, and arrivals keep
record order among themselves.  The only requirement streaming adds is that
record timestamps be sorted to within the window (every generator in
:mod:`repro.traces` emits sorted traces); pass ``window=None`` to fall back
to full pre-scheduling for pathological inputs.

Streaming results
-----------------
A streamed *trace* still produced an O(trace) *result*: ``WorkloadResult``
keeps one :class:`~repro.device.interface.Completion` per record, which is
what the paper's tables want at experiment scale but caps replay length in
memory.  ``replay_trace(..., sink=...)`` is the constant-memory mode: pass
any :class:`ResultSink` — typically a :class:`StreamingResult`, which folds
each completion into per-(op, priority) aggregates
(:class:`repro.sim.stats.ClassAggregate`: count, bytes, exact mean/max, a
bounded-relative-error quantile sketch, and a seeded reservoir sample) and
answers the same ``latency``/``bandwidth_mb_s``/``count`` queries as
``WorkloadResult``.  The default remains the list-of-completions mode, so
existing call sites and golden snapshots are untouched; the *simulation* is
identical either way — only what is retained about it changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Optional, Protocol,
                    Tuple, Union)

from repro.device.interface import Completion, IORequest, OpType
from repro.sim.engine import Simulator
from repro.sim.stats import (ClassAggregate, LatencyRecorder, LatencySummary,
                             QuantileSketch)
from repro.traces.record import TraceOp, TraceRecord
from repro.units import mb_per_s

__all__ = ["WorkloadResult", "ResultSink", "StreamingResult", "replay_trace",
           "ClosedLoopDriver", "REPLAY_WINDOW"]

#: default bound on concurrently-scheduled future submissions in
#: :func:`replay_trace` (heap memory is O(window), not O(trace length))
REPLAY_WINDOW = 4096


@dataclass
class WorkloadResult:
    """Latency/bandwidth summary of one driven workload."""

    completions: List[Completion] = field(default_factory=list)
    elapsed_us: float = 0.0

    def _recorder(self, predicate: Callable[[Completion], bool]) -> LatencyRecorder:
        recorder = LatencyRecorder()
        for completion in self.completions:
            if predicate(completion):
                recorder.record(completion.response_us)
        return recorder

    def latency(
        self,
        op: Optional[OpType] = None,
        priority: Optional[bool] = None,
    ) -> LatencySummary:
        """Latency summary filtered by op and/or priority class."""

        def match(completion: Completion) -> bool:
            if op is not None and completion.op is not op:
                return False
            if priority is not None and (completion.priority > 0) != priority:
                return False
            return True

        return self._recorder(match).summary()

    @property
    def count(self) -> int:
        return len(self.completions)

    def bandwidth_mb_s(self, op: Optional[OpType] = None) -> float:
        nbytes = sum(
            c.size
            for c in self.completions
            if op is None or c.op is op
        )
        return mb_per_s(nbytes, self.elapsed_us)


class ResultSink(Protocol):
    """Anything that can absorb completions from a driver, one at a time.

    ``record`` is called once per finished request, on the simulator clock,
    with the completed :class:`~repro.device.interface.IORequest`; the sink
    must read what it needs immediately and hold no reference (the request
    object is driver-owned and garbage the moment the callback returns —
    retaining it would defeat the bounded-memory contract).  The driver
    stamps ``elapsed_us`` when the replay drains.
    """

    elapsed_us: float

    def record(self, request: IORequest) -> None: ...


class StreamingResult:
    """O(1)-memory replay result: the :class:`ResultSink` most callers want.

    Keeps one :class:`~repro.sim.stats.ClassAggregate` per (op, priority)
    traffic class — at most eight, regardless of trace length — and
    answers the same queries as :class:`WorkloadResult`:

    * ``latency(op=..., priority=...)`` — :class:`LatencySummary` whose
      count/mean/max are exact and whose percentiles carry the sketch's
      bounded relative error (``alpha``, default 1%),
    * ``bandwidth_mb_s(op=...)``, ``count``, ``elapsed_us``.

    Reservoir seeds derive deterministically from ``seed`` per class, so a
    replay is reproducible sample-for-sample.
    """

    #: stable per-class seed offsets (enum hash order is not deterministic)
    _OP_ORDER = {op: i for i, op in enumerate(OpType)}

    def __init__(self, alpha: float = 0.01, reservoir_k: int = 1024,
                 seed: int = 0x5EED) -> None:
        self._alpha = alpha
        self._reservoir_k = reservoir_k
        self._seed = seed
        self._classes: Dict[Tuple[OpType, bool], ClassAggregate] = {}
        self.elapsed_us = 0.0

    def record(self, request: IORequest) -> None:
        key = (request.op, request.priority > 0)
        aggregate = self._classes.get(key)
        if aggregate is None:
            class_seed = (self._seed * 31
                          + self._OP_ORDER[request.op] * 2 + key[1])
            aggregate = self._classes[key] = ClassAggregate(
                self._alpha, self._reservoir_k, class_seed
            )
        aggregate.add(request.complete_us - request.submit_us, request.size)

    # -- the WorkloadResult query API ------------------------------------

    @property
    def count(self) -> int:
        return sum(agg.count for agg in self._classes.values())

    def latency(
        self,
        op: Optional[OpType] = None,
        priority: Optional[bool] = None,
    ) -> LatencySummary:
        """Latency summary filtered by op and/or priority class."""
        matched = [
            aggregate
            for (key_op, key_pri), aggregate in sorted(
                self._classes.items(),
                key=lambda item: (self._OP_ORDER[item[0][0]], item[0][1]),
            )
            if (op is None or key_op is op)
            and (priority is None or key_pri == priority)
        ]
        if not matched:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        if len(matched) == 1:
            return matched[0].latencies.summary()
        merged = QuantileSketch(self._alpha)
        for aggregate in matched:
            merged.merge(aggregate.latencies.sketch)
        return merged.summary()

    def bandwidth_mb_s(self, op: Optional[OpType] = None) -> float:
        nbytes = sum(
            aggregate.bytes
            for (key_op, _), aggregate in self._classes.items()
            if op is None or key_op is op
        )
        return mb_per_s(nbytes, self.elapsed_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StreamingResult n={self.count} "
                f"classes={len(self._classes)}>")


def replay_trace(
    sim: Simulator,
    device,
    records: Iterable[TraceRecord],
    time_scale: float = 1.0,
    collect_frees: bool = False,
    window: Optional[int] = REPLAY_WINDOW,
    sink: Optional[ResultSink] = None,
) -> Union[WorkloadResult, ResultSink]:
    """Open-loop replay: submit each record at ``time_us * time_scale``.

    Returns after the event queue drains.  READ/WRITE completions are
    collected (FREEs too with ``collect_frees``); ``elapsed_us`` spans first
    submission to last completion.

    At most ``window`` future submissions are scheduled at once (see the
    module docstring); ``window=None`` pre-schedules the whole trace, which
    accepts arbitrarily unsorted timestamps at O(trace) heap cost.

    With ``sink`` (any :class:`ResultSink`, e.g. :class:`StreamingResult`)
    completions stream into the sink instead of accumulating as a list, and
    the sink is returned; result memory is then whatever the sink keeps —
    O(1) for :class:`StreamingResult` — so replay length is bounded by
    patience, not RAM.  Pair it with a generator of records (e.g.
    :func:`repro.traces.synthetic.iter_synthetic`) to keep the trace side
    O(1) as well.
    """
    result: Union[WorkloadResult, ResultSink]
    if sink is None:
        result = WorkloadResult()
        completions = result.completions

        def on_complete(request: IORequest) -> None:
            if request.op in (OpType.READ, OpType.WRITE) or collect_frees:
                completions.append(Completion.of(request))
    else:
        result = sink
        sink_record = sink.record

        def on_complete(request: IORequest) -> None:
            if request.op in (OpType.READ, OpType.WRITE) or collect_frees:
                sink_record(request)

    start = sim.now

    def submit(record: TraceRecord) -> None:
        device.submit(
            IORequest(
                record.op.to_op_type(),
                record.offset,
                record.size,
                priority=record.priority,
                on_complete=on_complete,
            )
        )

    if window is None:
        for record in records:
            sim.schedule_at_front(
                start + record.time_us * time_scale, submit, record
            )
    else:
        if window <= 0:
            raise ValueError(f"window must be positive or None, got {window}")
        iterator = iter(records)

        def feed_one() -> None:
            record = next(iterator, None)
            if record is None:
                return
            at = start + record.time_us * time_scale
            if at < sim.now:
                raise ValueError(
                    f"trace timestamps unsorted beyond the replay window "
                    f"({window}): record time {at} is before the clock "
                    f"{sim.now}; sort the trace or pass window=None"
                )
            sim.schedule_at_front(at, submit_and_feed, record)

        def submit_and_feed(record: TraceRecord) -> None:
            submit(record)
            feed_one()

        for _ in range(window):
            feed_one()
    sim.run_until_idle()
    result.elapsed_us = sim.now - start
    return result


class ClosedLoopDriver:
    """Keeps ``depth`` requests outstanding until ``count`` complete.

    ``next_request`` is called for each submission and must return
    ``(op, offset, size)`` or ``(op, offset, size, priority)``.
    """

    def __init__(
        self,
        sim: Simulator,
        device,
        next_request: Callable[[int], Tuple],
        count: int,
        depth: int = 1,
        think_time_us: float = 0.0,
    ) -> None:
        if depth <= 0 or count <= 0:
            raise ValueError("depth and count must be positive")
        self.sim = sim
        self.device = device
        self.next_request = next_request
        self.count = count
        self.depth = depth
        self.think_time_us = think_time_us
        self.result = WorkloadResult()
        self._issued = 0
        self._completed = 0
        self._start_us = 0.0

    def run(self) -> WorkloadResult:
        self._start_us = self.sim.now
        for _ in range(min(self.depth, self.count)):
            self._issue()
        self.sim.run_until_idle()
        self.result.elapsed_us = self.sim.now - self._start_us
        return self.result

    def _issue(self) -> None:
        spec = self.next_request(self._issued)
        self._issued += 1
        op, offset, size = spec[:3]
        priority = spec[3] if len(spec) > 3 else 0
        self.device.submit(
            IORequest(op, offset, size, priority=priority,
                      on_complete=self._on_complete)
        )

    def _on_complete(self, request: IORequest) -> None:
        self._completed += 1
        self.result.completions.append(Completion.of(request))
        if self._issued < self.count:
            if self.think_time_us > 0:
                self.sim.schedule(self.think_time_us, self._issue)
            else:
                self._issue()

"""Workload drivers: trace replay, closed-loop generators, microbenchmarks."""

from repro.workloads.driver import (
    ClosedLoopDriver,
    WorkloadResult,
    replay_trace,
)
from repro.workloads.microbench import (
    MicrobenchResult,
    measure_bandwidth,
    prepare_region,
)

__all__ = [
    "ClosedLoopDriver",
    "WorkloadResult",
    "replay_trace",
    "MicrobenchResult",
    "measure_bandwidth",
    "prepare_region",
]

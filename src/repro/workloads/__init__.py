"""Workload drivers: trace replay, closed-loop generators, microbenchmarks."""

from repro.workloads.driver import (
    ClosedLoopDriver,
    StreamingResult,
    WorkloadResult,
    replay_pattern,
    replay_trace,
)
from repro.workloads.microbench import (
    MicrobenchResult,
    measure_bandwidth,
    prepare_region,
)

__all__ = [
    "ClosedLoopDriver",
    "StreamingResult",
    "WorkloadResult",
    "replay_trace",
    "replay_pattern",
    "MicrobenchResult",
    "measure_bandwidth",
    "prepare_region",
]

"""Sequential/random bandwidth probes (Table 2, contract terms 1 and 3).

``measure_bandwidth`` drives a device closed-loop with a fixed queue depth
and reports MB/s over the completed bytes.  ``prepare_region`` writes a
region sequentially first — required before *read* benchmarks (reading
never-written flash completes without media work) and before random-write
benchmarks on block-mapped devices (the RMW penalty needs live data to
overwrite, matching a real aged drive).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.interface import OpType
from repro.sim.engine import Simulator
from repro.sim.rng import stream
from repro.units import mb_per_s
from repro.workloads.driver import ClosedLoopDriver

__all__ = ["MicrobenchResult", "measure_bandwidth", "prepare_region"]


@dataclass(frozen=True)
class MicrobenchResult:
    """Outcome of one bandwidth probe."""

    mb_per_s: float
    mean_latency_us: float
    count: int
    pattern: str
    op: str
    request_bytes: int


def prepare_region(
    sim: Simulator,
    device,
    region_bytes: int,
    chunk_bytes: int = 256 * 1024,
) -> None:
    """Sequentially write [0, region_bytes) so later probes hit live data."""

    def next_request(index: int):
        return (OpType.WRITE, index * chunk_bytes, chunk_bytes)

    count = region_bytes // chunk_bytes
    if count == 0:
        raise ValueError("region smaller than one chunk")
    ClosedLoopDriver(sim, device, next_request, count=count, depth=4).run()


def measure_bandwidth(
    sim: Simulator,
    device,
    op: OpType,
    pattern: str,
    request_bytes: int,
    region_bytes: int,
    count: int = 256,
    depth: int = 1,
    seed: int = 7,
) -> MicrobenchResult:
    """Closed-loop probe: *count* requests of *request_bytes*, sequential or
    uniform-random within [0, region_bytes)."""
    if pattern not in ("seq", "rand"):
        raise ValueError(f"pattern must be 'seq' or 'rand', got {pattern!r}")
    if region_bytes < request_bytes:
        raise ValueError("region must hold at least one request")
    slots = region_bytes // request_bytes
    rng = stream(seed, f"microbench-{op.value}-{pattern}")

    def next_request(index: int):
        if pattern == "seq":
            offset = (index % slots) * request_bytes
        else:
            offset = rng.randrange(slots) * request_bytes
        return (op, offset, request_bytes)

    result = ClosedLoopDriver(
        sim, device, next_request, count=count, depth=depth
    ).run()
    nbytes = sum(c.size for c in result.completions)
    return MicrobenchResult(
        mb_per_s=mb_per_s(nbytes, result.elapsed_us),
        mean_latency_us=result.latency().mean_us,
        count=result.count,
        pattern=pattern,
        op=op.value,
        request_bytes=request_bytes,
    )

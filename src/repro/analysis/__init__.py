"""Determinism & simulation-safety linter.

Every PR since the seed has shipped under one contract: *simulated
behaviour must be bit-identical* (the BENCH_CORE fingerprints, the N=1
fleet differential, the merge-exactness property tests).  The hazards
that can silently break that contract — unseeded randomness, wall-clock
leakage, set-order-dependent decisions, pooled-object escapes,
unpicklable state crossing a ``ProcessPoolExecutor`` boundary — are
exactly the ones a reviewer is worst at spotting, because the code runs
fine and the divergence only shows up as a fingerprint mismatch three
PRs later.

This package turns the convention into a checked invariant: a
self-contained AST analysis pass (stdlib only) with

* a rule registry (:mod:`repro.analysis.registry`) of six hazard
  families tuned to this codebase (:mod:`repro.analysis.rules`),
* per-line ``# repro: allow[rule-id]`` suppression pragmas
  (:mod:`repro.analysis.context`) for deliberate idioms,
* a committed baseline (:mod:`repro.analysis.baseline`,
  ``LINT_BASELINE.json``) for grandfathered findings that cannot be
  fixed without moving pinned behaviour, and
* text/JSON reporters behind ``python -m repro.analysis.lint``, wired
  into CI as a hard gate next to the perf gate.

See ``docs/architecture.md`` §12 for the rule catalogue and the
pragma/baseline workflow.

Imports are lazy (module ``__getattr__``) so ``python -m
repro.analysis.lint`` does not trip runpy's "found in sys.modules
after import of package" warning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = ["Finding", "LintResult", "lint_paths", "lint_sources"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.findings import Finding
    from repro.analysis.lint import LintResult, lint_paths, lint_sources


def __getattr__(name: str) -> object:
    if name == "Finding":
        from repro.analysis.findings import Finding
        return Finding
    if name in ("LintResult", "lint_paths", "lint_sources"):
        from repro.analysis import lint
        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The unit of lint output: one :class:`Finding` per hazard site."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One lint hit, anchored to a source line.

    ``line_text`` (the stripped source line) is part of the identity used
    for baseline matching, so a baseline entry survives line-number drift
    but is invalidated the moment the offending code itself changes.
    """

    rule: str
    path: str  # repo-relative posix path, e.g. "src/repro/sim/engine.py"
    line: int  # 1-based
    col: int  # 0-based
    message: str
    line_text: str = ""

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across pure line-number drift."""
        return (self.rule, self.path, self.line_text)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule}: {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }

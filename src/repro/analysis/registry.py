"""Rule registry: metadata plus the check callables, in two phases.

*Module rules* see one :class:`~repro.analysis.context.ModuleContext` at
a time; *project rules* run after every module is parsed and see them
all (cross-module analyses such as RNG stream-name collision detection).
Rules register themselves at import of :mod:`repro.analysis.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["Rule", "module_rule", "project_rule", "all_rules",
           "module_checks", "project_checks"]

ModuleCheck = Callable[[ModuleContext], Iterable[Finding]]
ProjectCheck = Callable[[Sequence[ModuleContext]], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """Metadata of one rule (the id is what pragmas/baselines reference)."""

    id: str
    family: str
    summary: str
    #: where the rule looks: "guarded" (sim/device/ftl/flash/fleet),
    #: "hot" (hot-path modules), or "tree" (everything linted)
    scope: str


_MODULE_CHECKS: List[Tuple[Rule, ModuleCheck]] = []
_PROJECT_CHECKS: List[Tuple[Rule, ProjectCheck]] = []
_BY_ID: Dict[str, Rule] = {}


def _register(rule: Rule) -> None:
    if rule.id in _BY_ID:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _BY_ID[rule.id] = rule


def module_rule(id: str, family: str, summary: str, scope: str = "tree"
                ) -> Callable[[ModuleCheck], ModuleCheck]:
    """Register a per-module check under the given rule id."""
    rule = Rule(id=id, family=family, summary=summary, scope=scope)

    def decorate(check: ModuleCheck) -> ModuleCheck:
        _register(rule)
        _MODULE_CHECKS.append((rule, check))
        return check

    return decorate


def project_rule(id: str, family: str, summary: str, scope: str = "tree"
                 ) -> Callable[[ProjectCheck], ProjectCheck]:
    """Register a whole-project check under the given rule id."""
    rule = Rule(id=id, family=family, summary=summary, scope=scope)

    def decorate(check: ProjectCheck) -> ProjectCheck:
        _register(rule)
        _PROJECT_CHECKS.append((rule, check))
        return check

    return decorate


def all_rules() -> List[Rule]:
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return sorted(_BY_ID.values(), key=lambda rule: (rule.family, rule.id))


def module_checks() -> Sequence[Tuple[Rule, ModuleCheck]]:
    import repro.analysis.rules  # noqa: F401

    return tuple(_MODULE_CHECKS)


def project_checks() -> Sequence[Tuple[Rule, ProjectCheck]]:
    import repro.analysis.rules  # noqa: F401

    return tuple(_PROJECT_CHECKS)

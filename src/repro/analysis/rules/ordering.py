"""Family 2 — ordering hazards.

Iteration order of a ``set`` depends on insertion history and (for str
keys) the per-process hash seed; any scheduling/FTL decision derived
from it is nondeterministic across processes.  ``sorted(key=id)`` orders
by allocator addresses.  Float ``==`` on simulated timestamps is only
sound when both sides are *the same* computed value — the deliberate
same-instant checks in the engine carry pragmas; new sites must justify
themselves the same way.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Sequence, Set

from repro.analysis.context import (ModuleContext, scope_statements,
                                    terminal_name)
from repro.analysis.findings import Finding
from repro.analysis.registry import module_rule

__all__ = ["check_set_iter", "check_id_sort", "check_float_time_eq"]

#: calls whose argument order is observable (order-insensitive reducers
#: like min/max/sum/len/any/all/sorted are deliberately absent)
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "reversed", "iter"}

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}


def _scope_exprs(body: Sequence[ast.stmt]) -> Iterator[ast.expr]:
    """Every expression evaluated in this scope (nested function/class
    bodies excluded — they are scanned as their own scopes)."""
    for stmt in scope_statements(body):
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                for inner in ast.walk(child):
                    if isinstance(inner, ast.expr):
                        yield inner


def _set_names_in_scope(body: Sequence[ast.stmt]) -> Set[str]:
    """Names assigned a syntactically set-typed value in this scope."""
    names: Set[str] = set()
    for stmt in scope_statements(body):
        if isinstance(stmt, ast.Assign):
            targets: List[ast.expr] = list(stmt.targets)
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if _is_set_expr(value, names):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (isinstance(func, ast.Attribute) and func.attr in _SET_METHODS
                and _is_set_expr(func.value, set_names)):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _scan_scope(ctx: ModuleContext, body: Sequence[ast.stmt],
                findings: List[Finding]) -> None:
    set_names = _set_names_in_scope(body)
    for node in _scope_exprs(body):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, set_names):
                    findings.append(ctx.finding(
                        "set-iter", gen.iter,
                        "comprehension over a set: order is insertion/hash "
                        "dependent; wrap in sorted(...)"))
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CALLS and node.args
                    and _is_set_expr(node.args[0], set_names)):
                findings.append(ctx.finding(
                    "set-iter", node.args[0],
                    f"{func.id}() over a set materializes hash order; "
                    f"wrap in sorted(...)"))
    # for-loop iterables are direct statement children, not caught above
    for stmt in scope_statements(body):
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if _is_set_expr(stmt.iter, set_names):
                findings.append(ctx.finding(
                    "set-iter", stmt.iter,
                    "iteration over a set: order is insertion/hash "
                    "dependent; wrap in sorted(...) before it feeds a "
                    "decision"))


@module_rule(
    "set-iter", "ordering",
    "order-sensitive iteration over a set",
    scope="guarded")
def check_set_iter(ctx: ModuleContext) -> List[Finding]:
    if not ctx.guarded:
        return []
    findings: List[Finding] = []
    _scan_scope(ctx, ctx.tree.body, findings)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _scan_scope(ctx, node.body, findings)
    unique = {(f.line, f.col, f.message): f for f in findings}
    return [unique[key] for key in sorted(unique)]


def _key_uses_id(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda):
        for inner in ast.walk(node.body):
            if (isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "id"):
                return True
    return False


@module_rule(
    "id-sort", "ordering",
    "sorting keyed on id() (allocator-address order)")
def check_id_sort(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_sort = ((isinstance(func, ast.Name) and func.id == "sorted")
                   or (isinstance(func, ast.Attribute) and func.attr == "sort"))
        if not is_sort:
            continue
        for keyword in node.keywords:
            if keyword.arg == "key" and _key_uses_id(keyword.value):
                findings.append(ctx.finding(
                    "id-sort", node,
                    "sort keyed on id(): allocator addresses vary run to "
                    "run; key on a stable field instead"))
    return findings


#: identifiers that look like simulated-time values
_TIME_NAME = re.compile(
    r"(_us|_ns|_at)$|^(now|time|clock|deadline|stamp|mtime)$"
    r"|(_time|_now|_clock|_deadline|_stamp)$")


def _is_time_name(node: ast.expr) -> bool:
    name = terminal_name(node)
    return name is not None and bool(_TIME_NAME.search(name))


def _is_literal(node: ast.expr) -> bool:
    """Constant, including negated literals like ``-1.0`` (UnaryOp)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant)


@module_rule(
    "float-time-eq", "ordering",
    "float ==/!= on simulated timestamps",
    scope="guarded")
def check_float_time_eq(ctx: ModuleContext) -> List[Finding]:
    if not ctx.guarded:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        left, right = node.left, node.comparators[0]
        # sentinel checks against literals (-1.0 markers) are fine
        if _is_literal(left) or _is_literal(right):
            continue
        if _is_time_name(left) or _is_time_name(right):
            findings.append(ctx.finding(
                "float-time-eq", node,
                "float equality on a simulated timestamp: only sound when "
                "both sides are the same computed value (annotate the "
                "invariant with a pragma if so)"))
    return findings

"""Family 1 — nondeterminism sources inside the simulation.

Everything the simulator computes must be a pure function of its seeded
config: the process-wide ``random`` module, numpy's global RNG, wall
clocks, and environment reads all smuggle in state the fingerprint gate
cannot see.  Seeded instances (``random.Random(seed)``,
``np.random.default_rng(seed)``, ``stream(seed, name)``) are the
sanctioned alternatives and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import module_rule

__all__ = ["check_global_rng", "check_wall_clock", "check_env_read"]

#: time.* entry points that read the host clock
_WALL_CLOCK_TIME = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
#: datetime constructors that read the host clock (argless "Date-style")
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}

#: np.random constructors that are fine *when explicitly seeded*
_SEEDABLE_RNG = {"default_rng", "RandomState", "Generator", "SeedSequence"}


def _from_imports(tree: ast.Module, module: str) -> Set[str]:
    """Names bound by ``from <module> import ...`` (honoring aliases)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@module_rule(
    "global-rng", "nondeterminism",
    "process-global RNG use (random.*/np.random.*) inside the simulation",
    scope="guarded")
def check_global_rng(ctx: ModuleContext) -> List[Finding]:
    if not ctx.guarded:
        return []
    findings: List[Finding] = []
    bare = _from_imports(ctx.tree, "random")
    for call in _calls(ctx.tree):
        dotted = dotted_name(call.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random":
                if not call.args and not call.keywords:
                    findings.append(ctx.finding(
                        "global-rng", call,
                        "random.Random() with no seed draws from OS entropy; "
                        "pass an explicit seed or use stream(seed, name)"))
            else:
                findings.append(ctx.finding(
                    "global-rng", call,
                    f"call to process-global random.{parts[1]}; derive a "
                    f"seeded stream via repro.sim.rng.stream instead"))
        elif parts[0] in ("np", "numpy") and len(parts) >= 3 and parts[1] == "random":
            attr = parts[2]
            if attr in _SEEDABLE_RNG and (call.args or call.keywords):
                continue  # explicitly seeded constructor
            findings.append(ctx.finding(
                "global-rng", call,
                f"call to numpy global RNG {dotted}; construct a seeded "
                f"Generator (np.random.default_rng(seed)) instead"))
        elif len(parts) == 1 and parts[0] in bare:
            if parts[0] == "Random" and (call.args or call.keywords):
                continue
            findings.append(ctx.finding(
                "global-rng", call,
                f"call to {parts[0]} imported from the process-global "
                f"random module"))
    return findings


@module_rule(
    "wall-clock", "nondeterminism",
    "host wall-clock read inside the simulation (time.*/datetime.now)",
    scope="guarded")
def check_wall_clock(ctx: ModuleContext) -> List[Finding]:
    if not ctx.guarded:
        return []
    findings: List[Finding] = []
    bare = _from_imports(ctx.tree, "time") | {
        name for name in _from_imports(ctx.tree, "datetime")
        if name in _WALL_CLOCK_DATETIME
    }
    for call in _calls(ctx.tree):
        dotted = dotted_name(call.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        hit = (
            (parts[0] == "time" and len(parts) == 2
             and parts[1] in _WALL_CLOCK_TIME)
            or (len(parts) >= 2 and parts[-1] in _WALL_CLOCK_DATETIME
                and parts[-2] in ("datetime", "date"))
            or (len(parts) == 1 and parts[0] in bare
                and parts[0] in (_WALL_CLOCK_TIME | _WALL_CLOCK_DATETIME))
        )
        if hit:
            findings.append(ctx.finding(
                "wall-clock", call,
                f"{dotted}() reads the host clock; simulated time must come "
                f"from Simulator.now"))
    return findings


@module_rule(
    "env-read", "nondeterminism",
    "os.environ read inside the simulation",
    scope="guarded")
def check_env_read(ctx: ModuleContext) -> List[Finding]:
    if not ctx.guarded:
        return []
    findings: List[Finding] = []
    bare = _from_imports(ctx.tree, "os")
    for node in ast.walk(ctx.tree):
        dotted = None
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
        elif isinstance(node, ast.Subscript):
            dotted = dotted_name(node.value)
        elif isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
        if dotted is None:
            continue
        hit = (
            dotted in ("os.environ", "os.getenv")
            or dotted.startswith("os.environ.")
            or (dotted.split(".")[0] in bare
                and dotted.split(".")[0] in ("environ", "getenv"))
        )
        if hit and isinstance(node, (ast.Call, ast.Subscript)):
            findings.append(ctx.finding(
                "env-read", node,
                f"{dotted} read inside the simulation; environment knobs "
                f"belong in configs resolved at the entry point"))
    return findings

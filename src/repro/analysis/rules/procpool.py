"""Family 5 — process-parallel safety.

The fleet's determinism argument (bit-identical reports for any worker
count) holds because nothing crosses the ``ProcessPoolExecutor``
boundary except picklable configs in and picklable results out.  A
submitted lambda, nested function, or bound method either fails to
pickle outright or — worse — drags a copy of live simulator state into
the worker, where it silently diverges from the parent's.

Checks on every ``<executor>.submit(fn, *args)`` / ``.map(fn, ...)``:

* ``fn`` must be a module-level function (not a lambda, not a function
  defined inside the submitting scope, not a bound method);
* the target's parameters must not be annotated with live simulation
  types (``Simulator``, ``SSD``, ``FlashElement``, ...);
* no call-site argument may be a local that holds a live simulator or
  device (assigned from ``Simulator()``, a device preset builder, or
  ``build_device``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.context import ModuleContext, scope_statements, terminal_name
from repro.analysis.findings import Finding
from repro.analysis.registry import module_rule

__all__ = ["check_procpool"]

#: annotations that mean "live simulation state" — never picklable-safe
UNPICKLABLE_TYPES = {
    "Simulator", "Event", "SerialResource", "FlashElement", "FlashOp",
    "SSD", "StorageDevice", "IORequest", "FaultModel", "BaseFTL",
}

#: constructors whose results are live simulation state
LIVE_FACTORIES = {
    "Simulator", "SSD", "build_device", "run_device_live",
    "s1slc", "s2slc", "s3slc", "s4slc_sim", "s5mlc",
}

_EXECUTOR_CLASSES = {"ProcessPoolExecutor"}


def _executor_names(body: Sequence[ast.stmt]) -> Set[str]:
    names: Set[str] = set()
    for stmt in scope_statements(body):
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                call = item.context_expr
                if (isinstance(call, ast.Call)
                        and terminal_name(call.func) in _EXECUTOR_CLASSES
                        and isinstance(item.optional_vars, ast.Name)):
                    names.add(item.optional_vars.id)
        elif isinstance(stmt, ast.Assign):
            if (isinstance(stmt.value, ast.Call)
                    and terminal_name(stmt.value.func) in _EXECUTOR_CLASSES):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _live_locals(body: Sequence[ast.stmt]) -> Set[str]:
    """Local names holding live simulator/device state."""
    live: Set[str] = set()
    for stmt in scope_statements(body):
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        if not (isinstance(value, ast.Call)
                and terminal_name(value.func) in LIVE_FACTORIES):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                live.add(target.id)
            elif isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        live.add(element.id)
    return live


def _module_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    return {stmt.name: stmt for stmt in tree.body
            if isinstance(stmt, ast.FunctionDef)}


def _module_imports(tree: ast.Module) -> Set[str]:
    """Names bound at module level by import statements."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                names.add(alias.asname or alias.name)
    return names


def _nested_defs(body: Sequence[ast.stmt]) -> Set[str]:
    return {stmt.name for stmt in scope_statements(body)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _check_target(ctx: ModuleContext, call: ast.Call, fn: ast.expr,
                  module_fns: Dict[str, ast.FunctionDef],
                  module_imports: Set[str], nested: Set[str],
                  findings: List[Finding]) -> None:
    if isinstance(fn, ast.Lambda):
        findings.append(ctx.finding(
            "procpool-unsafe", call,
            "lambda submitted to a process pool: not picklable"))
        return
    if isinstance(fn, ast.Attribute):
        owner = fn.value
        if not (isinstance(owner, ast.Name) and owner.id in module_imports):
            findings.append(ctx.finding(
                "procpool-unsafe", call,
                f"bound method {terminal_name(fn)!r} submitted to a process "
                f"pool: pickling it ships a copy of the owning object"))
        return
    if isinstance(fn, ast.Name):
        if fn.id in nested:
            findings.append(ctx.finding(
                "procpool-unsafe", call,
                f"locally-defined function {fn.id!r} submitted to a process "
                f"pool: not picklable and may close over live state"))
            return
        target = module_fns.get(fn.id)
        if target is not None:
            args = target.args
            for param in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if param.annotation is None:
                    continue
                annotation = terminal_name(param.annotation)
                if annotation in UNPICKLABLE_TYPES:
                    findings.append(ctx.finding(
                        "procpool-unsafe", call,
                        f"worker {fn.id!r} takes live simulation state "
                        f"({param.arg}: {annotation}); workers must rebuild "
                        f"from picklable config"))


def _check_args(ctx: ModuleContext, call: ast.Call, live: Set[str],
                findings: List[Finding]) -> None:
    for arg in call.args[1:]:
        if isinstance(arg, ast.Name) and arg.id in live:
            findings.append(ctx.finding(
                "procpool-unsafe", call,
                f"argument {arg.id!r} holds a live simulator/device; "
                f"pass the config and rebuild in the worker"))
        elif isinstance(arg, ast.Lambda):
            findings.append(ctx.finding(
                "procpool-unsafe", call,
                "lambda argument submitted to a process pool: not picklable"))


@module_rule(
    "procpool-unsafe", "procpool",
    "unpicklable or state-carrying submission to a process pool")
def check_procpool(ctx: ModuleContext) -> List[Finding]:
    module_fns = _module_functions(ctx.tree)
    module_imports = _module_imports(ctx.tree)
    findings: List[Finding] = []
    scopes: List[Sequence[ast.stmt]] = [ctx.tree.body]
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node.body)
    for body in scopes:
        executors = _executor_names(body)
        if not executors:
            continue
        live = _live_locals(body)
        nested = _nested_defs(body)
        for stmt in scope_statements(body):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in ("submit", "map")
                        and isinstance(func.value, ast.Name)
                        and func.value.id in executors
                        and node.args):
                    continue
                _check_target(ctx, node, node.args[0], module_fns,
                              module_imports, nested, findings)
                _check_args(ctx, node, live, findings)
    unique = {(f.line, f.col, f.message): f for f in findings}
    return [unique[key] for key in sorted(unique)]

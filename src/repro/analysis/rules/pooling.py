"""Family 4 — pooled-object lifecycle.

``FlashOp`` and ``IORequest`` are slab-recycled: the pool hands the same
object out again after release, so any reference that outlives the
request (a module-level cache, a global history list) is silently
rebound to a *different* logical operation later — the classic recycled-
object aliasing bug, invisible until a fingerprint moves.

The escape analysis is deliberately best-effort but zero-false-negative
on the known patterns: a value is *pooled* when it is assigned from an
``.acquire(...)`` call, popped from a ``*pool*``/``*slab*`` container,
or is a parameter annotated with a pooled class; it *escapes* when it is
stored into module-level state (append/add/insert on a module-level
container, a subscript store into one, or a ``global`` rebind).
Instance-attribute stores are out of scope — lifetimes there need whole-
program knowledge (the pools' own slabs would all be false positives).
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set

from repro.analysis.context import ModuleContext, scope_statements, terminal_name
from repro.analysis.findings import Finding
from repro.analysis.registry import module_rule

__all__ = ["check_pool_escape"]

#: classes whose instances are slab-recycled in this repo
POOLED_CLASSES = {"FlashOp", "IORequest"}

_STORE_METHODS = {"append", "appendleft", "add", "insert", "push", "extend"}


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _annotation_name(node: ast.expr) -> str:
    name = terminal_name(node)
    if name:
        return name
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\"").split(".")[-1].split("[")[0]
    return ""


def _is_pooled_source(value: ast.expr) -> bool:
    """Does this expression produce a slab-recycled object?"""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        if func.attr == "acquire":
            return True
        receiver = terminal_name(func.value) or ""
        if func.attr == "pop" and ("pool" in receiver or "slab" in receiver):
            return True
    return False


def _pooled_names(body: Sequence[ast.stmt],
                  params: Sequence[ast.arg]) -> Set[str]:
    pooled: Set[str] = set()
    for param in params:
        if param.annotation is not None and (
                _annotation_name(param.annotation) in POOLED_CLASSES):
            pooled.add(param.arg)
    for stmt in scope_statements(body):
        if isinstance(stmt, ast.Assign) and _is_pooled_source(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    pooled.add(target.id)
        elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
                and isinstance(stmt.target, ast.Name)
                and _is_pooled_source(stmt.value)):
            pooled.add(stmt.target.id)
    return pooled


def _mentions_pooled(node: ast.expr, pooled: Set[str]) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and inner.id in pooled:
            return True
    return False


def _scan_scope(ctx: ModuleContext, body: Sequence[ast.stmt],
                params: Sequence[ast.arg], module_names: Set[str],
                findings: List[Finding]) -> None:
    pooled = _pooled_names(body, params)
    if not pooled:
        return
    globals_here: Set[str] = set()
    for stmt in scope_statements(body):
        if isinstance(stmt, ast.Global):
            globals_here.update(stmt.names)
    for stmt in scope_statements(body):
        # container.append(op) / container[key] = op on module-level state
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            func = call.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _STORE_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_names
                    and any(_mentions_pooled(arg, pooled)
                            for arg in call.args)):
                findings.append(ctx.finding(
                    "pool-escape", call,
                    f"slab-recycled object stored into module-level "
                    f"container {func.value.id!r}: the pool will rebind it "
                    f"to a different operation after release"))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module_names
                        and _mentions_pooled(stmt.value, pooled)):
                    findings.append(ctx.finding(
                        "pool-escape", stmt,
                        f"slab-recycled object stored into module-level "
                        f"container {target.value.id!r}"))
                elif (isinstance(target, ast.Name)
                        and target.id in globals_here
                        and _mentions_pooled(stmt.value, pooled)):
                    findings.append(ctx.finding(
                        "pool-escape", stmt,
                        f"slab-recycled object bound to module global "
                        f"{target.id!r}"))


@module_rule(
    "pool-escape", "pooling",
    "slab-recycled object escaping into long-lived module state")
def check_pool_escape(ctx: ModuleContext) -> List[Finding]:
    module_names = _module_level_names(ctx.tree)
    findings: List[Finding] = []
    _scan_scope(ctx, ctx.tree.body, (), module_names, findings)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            _scan_scope(ctx, node.body, params, module_names, findings)
    return findings

"""Rule families (importing this package registers every rule).

Family          Rules                                   Scope
--------------  --------------------------------------  --------
nondeterminism  global-rng, wall-clock, env-read        guarded
ordering        set-iter, id-sort, float-time-eq        guarded
streams         stream-dup, stream-dynamic              tree
pooling         pool-escape                             tree
procpool        procpool-unsafe                         tree
hotpath         hot-slots, error-swallow                hot/tree
"""

from repro.analysis.rules import (hotpath, nondet, ordering, pooling,
                                  procpool, streams)

__all__ = ["nondet", "ordering", "streams", "pooling", "procpool", "hotpath"]

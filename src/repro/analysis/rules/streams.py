"""Family 3 — RNG stream-name hygiene.

``stream(seed, name)`` / ``derive_seed(seed, name)`` carve the repo's
RNG namespace: two components that derive the *same* (seed, name) pair
get the *same* random stream, silently correlating draws that every
model assumes independent.  Two checks:

* ``stream-dup`` (project-wide): two different call sites using the same
  literal name (or the same f-string template after placeholder
  normalization) collide whenever they run under one root seed.
* ``stream-dynamic`` (per module): a name built without a constant
  namespace prefix (a bare variable, or an f-string starting with a
  placeholder) can collide with any other stream; prefix it with a
  literal component (``f"fault.element.{id}"`` style).

The runtime complement is ``tests/test_stream_registry.py``, which
enumerates every derivation a fleet run performs and asserts global
uniqueness of the derived child seeds.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.context import ModuleContext, terminal_name
from repro.analysis.findings import Finding
from repro.analysis.registry import module_rule, project_rule

__all__ = ["check_stream_dynamic", "check_stream_dup"]

_DERIVERS = {"stream", "derive_seed"}
#: the definitions themselves pass the name through as a bare variable
_EXCLUDED_MODULES = {"repro/sim/rng.py"}


def _stream_calls(ctx: ModuleContext) -> List[Tuple[ast.Call, ast.expr]]:
    """(call, name-argument) for every stream()/derive_seed() call."""
    out: List[Tuple[ast.Call, ast.expr]] = []
    if ctx.rel in _EXCLUDED_MODULES:
        return out
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or len(node.args) < 2:
            continue
        name = terminal_name(node.func)
        if name in _DERIVERS:
            out.append((node, node.args[1]))
    return out


def _normalize(name_arg: ast.expr) -> Optional[str]:
    """A stream name's template: literal text with ``{}`` placeholders.

    Returns None when the argument is not a constant/f-string (those are
    ``stream-dynamic``'s business, not ``stream-dup``'s).
    """
    if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
        return name_arg.value
    if isinstance(name_arg, ast.JoinedStr):
        parts: List[str] = []
        for value in name_arg.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("{}")
        return "".join(parts)
    return None


@module_rule(
    "stream-dynamic", "streams",
    "RNG stream name without a constant namespace prefix")
def check_stream_dynamic(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for call, name_arg in _stream_calls(ctx):
        if isinstance(name_arg, ast.Constant):
            if not (isinstance(name_arg.value, str) and name_arg.value):
                findings.append(ctx.finding(
                    "stream-dynamic", call,
                    "stream name must be a non-empty string literal or a "
                    "prefixed f-string"))
            continue
        if isinstance(name_arg, ast.JoinedStr):
            values = name_arg.values
            ok = (bool(values) and isinstance(values[0], ast.Constant)
                  and isinstance(values[0].value, str) and values[0].value)
            if not ok:
                findings.append(ctx.finding(
                    "stream-dynamic", call,
                    "f-string stream name must start with a literal "
                    "namespace prefix (e.g. f\"fault.element.{id}\"), or "
                    "any two callers can collide"))
            continue
        findings.append(ctx.finding(
            "stream-dynamic", call,
            "dynamically-built stream name: use a literal (or a literal-"
            "prefixed f-string) so the namespace is auditable"))
    return findings


@project_rule(
    "stream-dup", "streams",
    "same RNG stream name used from multiple call sites")
def check_stream_dup(contexts: Sequence[ModuleContext]) -> List[Finding]:
    sites: Dict[str, List[Tuple[ModuleContext, ast.Call]]] = {}
    for ctx in contexts:
        for call, name_arg in _stream_calls(ctx):
            template = _normalize(name_arg)
            if template is None:
                continue  # stream-dynamic covers it
            sites.setdefault(template, []).append((ctx, call))
    findings: List[Finding] = []
    for template in sorted(sites):
        group = sites[template]
        locations = sorted({(ctx.path, call.lineno) for ctx, call in group})
        if len(locations) < 2:
            continue
        for ctx, call in group:
            others = ", ".join(
                f"{path}:{line}" for path, line in locations
                if (path, line) != (ctx.path, call.lineno))
            findings.append(ctx.finding(
                "stream-dup", call,
                f"stream name {template!r} is also derived at {others}; "
                f"identical (seed, name) pairs yield identical streams — "
                f"namespace one of them"))
    return findings

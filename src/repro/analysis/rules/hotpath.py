"""Family 6 — hot-path hygiene.

Two checks:

* ``hot-slots`` — every class in a designated hot module (see
  :data:`repro.analysis.context.HOT_MODULES`, or any module carrying the
  ``# repro: hot-path`` marker) must be laid out with ``__slots__``
  (directly or via ``@dataclass(slots=True)``): these classes are
  instantiated per op/per element and an instance ``__dict__`` is both
  memory and a latent source of typo'd-attribute bugs.  Exceptions,
  enums, Protocols and ABCs are exempt.
* ``error-swallow`` — an ``except`` that catches ``FlashStateError``
  (anywhere) or a bare ``except``/``except Exception`` (inside the
  guarded simulation packages) without re-raising hides a corrupted
  physical state transition; the fingerprint gate then pins the
  corruption as "correct".
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.context import ModuleContext, terminal_name
from repro.analysis.findings import Finding
from repro.analysis.registry import module_rule

__all__ = ["check_hot_slots", "check_error_swallow"]

_EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning")
_EXEMPT_BASES = {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
                 "Protocol", "ABC", "ABCMeta", "type"}


def _dataclass_slots(node: ast.ClassDef) -> Optional[bool]:
    """None if not a dataclass; else whether it passes slots=True."""
    for decorator in node.decorator_list:
        name = terminal_name(decorator) if not isinstance(decorator, ast.Call) \
            else terminal_name(decorator.func)
        if name != "dataclass":
            continue
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots":
                    value = keyword.value
                    return bool(isinstance(value, ast.Constant) and value.value)
        return False
    return None


def _defines_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"):
            return True
    return False


def _exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = terminal_name(base)
        if name is None:
            continue
        if name in _EXEMPT_BASES or name.endswith(_EXEMPT_BASE_SUFFIXES):
            return True
    if node.name.endswith(_EXEMPT_BASE_SUFFIXES):
        return True
    return False


@module_rule(
    "hot-slots", "hotpath",
    "hot-path class without __slots__",
    scope="hot")
def check_hot_slots(ctx: ModuleContext) -> List[Finding]:
    if not ctx.hot:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or _exempt(node):
            continue
        slots = _dataclass_slots(node)
        if slots is None:
            if not _defines_slots(node):
                findings.append(ctx.finding(
                    "hot-slots", node,
                    f"class {node.name} in a hot-path module has no "
                    f"__slots__; add them (or exempt the module from "
                    f"HOT_MODULES if it left the hot path)"))
        elif not slots:
            findings.append(ctx.finding(
                "hot-slots", node,
                f"dataclass {node.name} in a hot-path module lacks "
                f"slots=True"))
    return findings


_BROAD = {"Exception", "BaseException"}


def _catches(handler: ast.ExceptHandler, name: str) -> bool:
    node = handler.type
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(terminal_name(element) == name for element in node.elts)
    return terminal_name(node) == name


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Tuple):
        return any(terminal_name(element) in _BROAD for element in node.elts)
    return terminal_name(node) in _BROAD


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


@module_rule(
    "error-swallow", "hotpath",
    "except swallowing FlashStateError (or broad except in the simulation)")
def check_error_swallow(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if _catches(handler, "FlashStateError") and not _reraises(handler):
                findings.append(ctx.finding(
                    "error-swallow", handler,
                    "FlashStateError caught without re-raise: a corrupted "
                    "page-state transition would be pinned as correct "
                    "behaviour"))
            elif (ctx.guarded and _catches_broad(handler)
                    and not _reraises(handler)):
                findings.append(ctx.finding(
                    "error-swallow", handler,
                    "broad except without re-raise inside the simulation: "
                    "swallows FlashStateError (and everything else); catch "
                    "the specific expected exception"))
    return findings

"""The lint driver: ``python -m repro.analysis.lint``.

Walks the tree (default: ``src/repro``), runs every registered rule,
drops findings suppressed by ``# repro: allow[rule-id]`` pragmas or the
committed baseline (``LINT_BASELINE.json``), and reports the rest —
text by default, JSON with ``--format=json``.  Exit status 1 on any
unsuppressed finding, which is what CI gates on.

Programmatic entry points (used by ``tests/test_lint.py``):
:func:`lint_sources` lints in-memory ``(virtual_path, source)`` pairs —
the virtual path drives guarded/hot classification — and
:func:`lint_paths` lints real files.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules, module_checks, project_checks

__all__ = ["LintResult", "lint_sources", "lint_paths", "main",
           "REPO_ROOT", "DEFAULT_BASELINE"]

#: repo root, resolved from this file (src/repro/analysis/lint.py)
REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_BASELINE = REPO_ROOT / "LINT_BASELINE.json"
_SKIP_DIRS = {"__pycache__", ".git"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)  # unsuppressed
    suppressed: List[Finding] = field(default_factory=list)  # via pragma
    baselined: List[Finding] = field(default_factory=list)  # via baseline
    stale_baseline: List[Dict[str, object]] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "stale_baseline": self.stale_baseline,
            "rules": [
                {"id": rule.id, "family": rule.family, "scope": rule.scope,
                 "summary": rule.summary}
                for rule in all_rules()
            ],
        }


def _analyze(contexts: Sequence[ModuleContext]) -> List[Finding]:
    findings: List[Finding] = []
    for rule, check in module_checks():
        for ctx in contexts:
            findings.extend(check(ctx))
    for rule, check in project_checks():
        findings.extend(check(contexts))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _run(contexts: Sequence[ModuleContext],
         baseline: Optional[Baseline]) -> LintResult:
    result = LintResult(files=len(contexts))
    by_path = {ctx.path: ctx for ctx in contexts}
    surviving: List[Finding] = []
    for finding in _analyze(contexts):
        if by_path[finding.path].suppressed(finding):
            result.suppressed.append(finding)
        else:
            surviving.append(finding)
    if baseline is not None:
        kept, matched, stale = baseline.split(surviving)
        result.findings = kept
        result.baselined = matched
        result.stale_baseline = stale
    else:
        result.findings = surviving
    return result


def lint_sources(sources: Sequence[Tuple[str, str]],
                 baseline: Optional[Baseline] = None) -> LintResult:
    """Lint in-memory modules given as ``(virtual_path, source)`` pairs."""
    contexts = [ModuleContext.build(path, text) for path, text in sources]
    return _run(contexts, baseline)


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS.intersection(candidate.parts))
        elif path.suffix == ".py":
            files.append(path)
    return files


def _rel_path(path: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return resolved.as_posix()


def lint_paths(paths: Sequence[Path],
               baseline: Optional[Baseline] = None) -> LintResult:
    """Lint real files/directories."""
    sources = []
    for file_path in _collect_files(paths):
        sources.append((_rel_path(file_path),
                        file_path.read_text(encoding="utf-8")))
    return lint_sources(sources, baseline)


def _render_text(result: LintResult) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    for entry in result.stale_baseline:
        lines.append(
            f"warning: stale baseline entry {entry['rule']} at "
            f"{entry['path']} ({entry['line_text']!r}) — the finding it "
            f"grandfathered no longer exists; prune LINT_BASELINE.json")
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files} file(s) "
        f"({len(result.suppressed)} pragma-suppressed, "
        f"{len(result.baselined)} baselined)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism & simulation-safety linter (AST analysis; "
                    "see docs/architecture.md §12).")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint "
                             "(default: the src/repro tree)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default {DEFAULT_BASELINE.name} "
                             f"at the repo root, when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report grandfathered "
                             "findings too)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write all current unsuppressed findings to the "
                             "baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:16s} [{rule.family}/{rule.scope}] {rule.summary}")
        return 0

    paths = list(args.paths) or [REPO_ROOT / "src" / "repro"]
    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline \
            and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    result = lint_paths(paths, baseline)

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(f"wrote {len(result.findings)} entr(ies) to {baseline_path}")
        return 0

    if args.format == "json":
        report = json.dumps(result.as_dict(), indent=2)
    else:
        report = _render_text(result)
    print(report)
    if args.out is not None:
        args.out.write_text(report + "\n", encoding="utf-8")
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())

"""Committed baseline of grandfathered findings.

A baseline entry matches on ``(rule, path, stripped line text)`` — not
line numbers — so it survives unrelated edits but dies with the code it
covers.  The canonical use here is the pre-seed RNG stream-name
collisions: renaming those streams would move pinned simulated
behaviour, so they are grandfathered with a note instead of fixed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """Counted allowances keyed by :meth:`Finding.key`."""

    def __init__(self, entries: Sequence[Dict[str, object]] = ()) -> None:
        self._allow: Dict[Tuple[str, str, str], int] = {}
        self._notes: Dict[Tuple[str, str, str], str] = {}
        for entry in entries:
            key = (str(entry["rule"]), str(entry["path"]),
                   str(entry["line_text"]))
            self._allow[key] = self._allow.get(key, 0) + int(entry.get("count", 1))
            note = entry.get("note")
            if note:
                self._notes[key] = str(note)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r}")
        return cls(data.get("entries", ()))

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = finding.key()
            baseline._allow[key] = baseline._allow.get(key, 0) + 1
        return baseline

    def save(self, path: Path) -> None:
        entries = []
        for key in sorted(self._allow):
            rule, file_path, line_text = key
            entry: Dict[str, object] = {
                "rule": rule,
                "path": file_path,
                "line_text": line_text,
                "count": self._allow[key],
            }
            if key in self._notes:
                entry["note"] = self._notes[key]
            entries.append(entry)
        payload = {"version": _VERSION, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
        """Partition findings into (kept, baselined); also return the
        stale entries (allowances no current finding consumed)."""
        budget = dict(self._allow)
        kept: List[Finding] = []
        matched: List[Finding] = []
        for finding in findings:
            key = finding.key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched.append(finding)
            else:
                kept.append(finding)
        stale = [
            {"rule": rule, "path": path, "line_text": line_text, "count": count}
            for (rule, path, line_text), count in sorted(budget.items())
            if count > 0
        ]
        return kept, matched, stale

    def __len__(self) -> int:
        return sum(self._allow.values())

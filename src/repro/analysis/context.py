"""Per-module analysis context: parsed tree, pragmas, and AST helpers.

The context classifies a module against the repo layout (guarded
packages, hot-path modules) from its *path alone*, so fixture tests can
lint in-memory snippets under any virtual path and exercise exactly the
scoping the real tree gets.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import Finding

__all__ = [
    "GUARDED_PACKAGES",
    "HOT_MODULES",
    "HOT_MARKER",
    "ModuleContext",
    "scope_statements",
    "iter_scopes",
    "terminal_name",
    "dotted_name",
]

#: subpackages of ``repro`` whose modules run *inside* the simulation —
#: nondeterminism sources and ordering hazards are flagged only here
#: (trace generators draw from seeded streams by construction, and the
#: bench/validation layers may legitimately read wall clocks).
GUARDED_PACKAGES: Set[str] = {"sim", "device", "ftl", "flash", "fleet"}

#: modules whose classes sit on the per-op/per-element hot path: every
#: class here must carry ``__slots__`` (directly or via
#: ``@dataclass(slots=True)``).  New modules opt in by adding themselves
#: here or by carrying a ``# repro: hot-path`` marker comment.
HOT_MODULES: Set[str] = {
    "repro/flash/ops.py",
    "repro/flash/element.py",
    "repro/sim/engine.py",
    "repro/sim/resource.py",
    "repro/sim/stats.py",
    "repro/device/interface.py",
    "repro/ftl/freepool.py",
}

#: comment marker that opts any module into the hot-path checks
HOT_MARKER = "# repro: hot-path"

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([a-z0-9*,\s\-]+)\]")
_COMMENT_ONLY = re.compile(r"^\s*#")


def _parse_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> rule ids suppressed on that line.

    A pragma suppresses findings on its own line; a *comment-only* pragma
    line additionally covers the next line, so multi-line statements can
    be annotated without overlong lines.  ``allow[*]`` suppresses every
    rule.
    """
    out: Dict[int, Set[str]] = {}
    for index, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        out.setdefault(index, set()).update(ids)
        if _COMMENT_ONLY.match(text):
            out.setdefault(index + 1, set()).update(ids)
    return out


@dataclass
class ModuleContext:
    """Everything the rules need to analyze one module."""

    path: str  # repo-relative posix path ("src/repro/sim/engine.py")
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: path from the ``repro`` package component ("repro/sim/engine.py");
    #: empty when the module is outside a ``repro`` tree
    rel: str = ""
    #: first subpackage under ``repro`` ("sim"), "" at top level/outside
    package: str = ""
    #: 1-based line -> rule ids suppressed there
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        parts = path.replace("\\", "/").split("/")
        rel = ""
        package = ""
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            rel = "/".join(parts[anchor:])
            if len(parts) - anchor > 2:
                package = parts[anchor + 1]
        return cls(
            path=path.replace("\\", "/"),
            source=source,
            tree=tree,
            lines=lines,
            rel=rel,
            package=package,
            pragmas=_parse_pragmas(lines),
        )

    # -- classification ---------------------------------------------------

    @property
    def guarded(self) -> bool:
        """True for modules that run inside the simulation proper."""
        return self.package in GUARDED_PACKAGES

    @property
    def hot(self) -> bool:
        """True for modules under the hot-path ``__slots__`` contract."""
        if self.rel in HOT_MODULES:
            return True
        return any(line.strip().startswith(HOT_MARKER) for line in self.lines)

    # -- findings ---------------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            message=message,
            line_text=self.line_text(line),
        )

    def suppressed(self, finding: Finding) -> bool:
        allowed = self.pragmas.get(finding.line, ())
        return "*" in allowed or finding.rule in allowed


# -- AST helpers shared by the rules -------------------------------------

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def scope_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Yield every statement of a scope without descending into nested
    function/class scopes (their bodies are separate scopes)."""
    stack: List[ast.stmt] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_BARRIERS):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)


def iter_scopes(tree: ast.Module) -> Iterator[Sequence[ast.stmt]]:
    """Yield the statement list of every scope in the module: the module
    body first, then each (possibly nested) function body."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain (else None)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None if not a chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None

#!/usr/bin/env python
"""Quickstart: build an SSD, run a small mixed workload, read the stats.

Covers the three layers most users touch: the device (SSD + config), the
workload driver, and the statistics the paper's experiments are built on
(response times, write amplification, cleaning work) — plus the
bounded-memory result mode that scales the same replay to 10M-record
traces.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

from repro import SSD, SSDConfig, Simulator
from repro.device.interface import OpType
from repro.flash.geometry import FlashGeometry
from repro.ftl.prefill import prefill_pagemap
from repro.traces.synthetic import SyntheticConfig, iter_synthetic
from repro.units import KIB, MIB
from repro.workloads.driver import StreamingResult, replay_trace


def build_ssd(sim: Simulator) -> SSD:
    # a small 8-element SSD with a page-mapped log-structured FTL
    ssd = SSD(sim, SSDConfig(
        name="quickstart",
        n_elements=8,
        geometry=FlashGeometry(page_bytes=4096, pages_per_block=64,
                               blocks_per_element=64),  # 16 MB/element
        spare_fraction=0.10,
        controller_overhead_us=5.0,
    ))
    # age it: nearly full with scattered invalid pages, like a used drive
    # (free pages end up just above the cleaner's low watermark, so the
    # workload below keeps the garbage collector honest)
    prefill_pagemap(ssd.ftl, 0.90, overwrite_fraction=0.35)
    return ssd


def main() -> None:
    # one shared event loop; all devices and drivers run on it
    sim = Simulator()
    ssd = build_ssd(sim)
    print(f"device: {ssd.config.name}, capacity "
          f"{ssd.capacity_bytes / MIB:.0f} MB over {len(ssd.elements)} elements")

    # a synthetic mixed workload: 60% reads, a little sequentiality
    workload = SyntheticConfig(
        count=5000,
        region_bytes=int(ssd.capacity_bytes * 0.75),
        request_bytes=4 * KIB,
        read_fraction=0.6,
        seq_probability=0.3,
        interarrival_max_us=200.0,
        seed=42,
    )
    result = replay_trace(sim, ssd, iter_synthetic(workload))

    reads = result.latency(op=OpType.READ)
    writes = result.latency(op=OpType.WRITE)
    print(f"\ncompleted {result.count} requests in "
          f"{result.elapsed_us / 1000:.1f} ms simulated time")
    print(f"reads : mean {reads.mean_us:7.1f} us   p99 {reads.p99_us:7.1f} us")
    print(f"writes: mean {writes.mean_us:7.1f} us   p99 {writes.p99_us:7.1f} us")
    print(f"bandwidth: {result.bandwidth_mb_s():.1f} MB/s")

    stats = ssd.ftl.stats
    print(f"\nwrite amplification: {ssd.stats.write_amplification:.2f}")
    print(f"cleaning: {stats.clean_pages_moved} pages moved, "
          f"{stats.clean_erases} erases, "
          f"{stats.clean_time_us / 1000:.1f} ms of device time")

    # the FTL's internal invariants hold after any workload
    ssd.ftl.check_consistency()
    print("FTL consistency check: OK")

    # the same replay, bounded-memory: stream completions into O(1)
    # per-(op, priority) aggregates instead of keeping one Completion per
    # record.  Identical simulation; only what is retained changes — this
    # is the mode that scales to 10M-record traces (README: "Replay at
    # scale").  Quantiles carry the sketch's ~1% relative error.
    sim2 = Simulator()
    ssd2 = build_ssd(sim2)
    streamed = replay_trace(sim2, ssd2, iter_synthetic(workload),
                            sink=StreamingResult())
    sketch_reads = streamed.latency(op=OpType.READ)
    print(f"\nstreaming sink, same workload: {streamed.count} requests, "
          f"read p99 {sketch_reads.p99_us:7.1f} us "
          f"(exact mode said {reads.p99_us:7.1f} us)")


if __name__ == "__main__":
    main()

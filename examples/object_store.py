#!/usr/bin/env python
"""The OSD object store (paper §3.7): block management inside the device.

Demonstrates the paper's proposed interface end to end:

* objects with attributes (priority, read-only, tier hints),
* device-side stripe-aligned allocation,
* REMOVE turning directly into free-page knowledge (informed cleaning),
* tier co-location of hot objects on a heterogeneous SLC+MLC device.

Run:  PYTHONPATH=src python examples/object_store.py
"""

from repro import Simulator
from repro.core.object import ObjectAttributes
from repro.core.placement import TieredPlacement
from repro.core.store import ObjectStore
from repro.device.presets import tiered_slc_mlc
from repro.units import KIB, MIB


def main() -> None:
    sim = Simulator()
    device = tiered_slc_mlc(sim, trim_enabled=True)
    placement = TieredPlacement(device.capacity_bytes, device.tier_boundary)
    store = ObjectStore(device, placement=placement)
    print(f"tiered device: {device.slc.capacity_bytes / MIB:.0f} MB SLC + "
          f"{device.mlc.capacity_bytes / MIB:.0f} MB MLC\n")

    # a hot database root object, pinned to the SLC tier
    root = store.create(ObjectAttributes(priority=1, tier="fast"))
    store.write(root, 0, 256 * KIB)

    # a cold read-only archive: capacity tier, cold placement hint
    archive = store.create(ObjectAttributes(read_only=True, tier="capacity"))
    store.write(archive, 0, 2 * MIB)

    # a scratch object that will be deleted
    scratch = store.create()
    store.write(scratch, 0, 1 * MIB)
    sim.run_until_idle()

    for name, oid in (("root", root), ("archive", archive), ("scratch", scratch)):
        descriptor = store.stat(oid)
        first = descriptor.extents[0]
        tier = "SLC" if first.start < device.tier_boundary else "MLC"
        print(f"{name:8s} oid={oid}  size={descriptor.size // KIB:5d} KiB  "
              f"extents={len(descriptor.extents)}  first extent in {tier}")

    # timed reads: the root object (SLC) vs the archive (MLC)
    for name, oid, size in (("root", root, 256 * KIB),
                            ("archive", archive, 256 * KIB)):
        start = sim.now
        finished = []
        store.read(oid, 0, size, done=lambda: finished.append(sim.now))
        sim.run_until_idle()
        print(f"read 256 KiB of {name:8s}: {(finished[0] - start) / 1000:.2f} ms")

    # REMOVE = delete notification: the device learns immediately
    before = (device.slc.ftl.stats.trimmed_pages
              + device.mlc.ftl.stats.trimmed_pages)
    store.remove(scratch)
    sim.run_until_idle()
    after = (device.slc.ftl.stats.trimmed_pages
             + device.mlc.ftl.stats.trimmed_pages)
    print(f"\nremoved 'scratch': device invalidated {after - before} flash "
          "pages without copying them ever again")
    print(f"objects remaining: {store.list_objects()}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The isolation curve: a gold tenant vs an ever-noisier neighbour.

A two-device fleet hosts a fixed gold OLTP tenant (random 4 KB, 50%
reads, every request on the priority path) next to a bronze batch
writer.  The sweep turns up the neighbour's offered load — shorter
inter-arrivals, more requests — and watches the gold tenant's p95
latency: the QoS-isolation question ("how much does the noisy neighbour
cost me?") answered with bit-reproducible runs.

Because tenants own disjoint LBA namespaces, all interference is
*resource* interference — queues, flash elements, cleaning — never data
interference; and because every stream is seeded per (device, tenant)
pair, the gold tenant replays the identical trace at every sweep point.
The curve is therefore exactly the neighbour's marginal cost.

Run:  PYTHONPATH=src python examples/fleet_isolation.py
"""

from repro.fleet import FleetConfig, TenantSpec, run_fleet
from repro.fleet.sweep import SweepPoint, run_sweep

#: neighbour load points: (label, requests, mean-interarrival scale)
LOAD_POINTS = (
    ("idle", 200, 400.0),
    ("light", 1000, 200.0),
    ("medium", 2000, 100.0),
    ("heavy", 4000, 50.0),
)


def fleet_for(neighbour_count: int, neighbour_interarrival_us: float) -> FleetConfig:
    return FleetConfig(
        tenants=(
            TenantSpec(name="oltp", pattern="random", qos="gold",
                       count=2000, read_fraction=0.5,
                       interarrival_max_us=200.0),
            TenantSpec(name="batch", pattern="sequential", qos="bronze",
                       count=neighbour_count,
                       interarrival_max_us=neighbour_interarrival_us,
                       weight=2.0),
        ),
        n_devices=2,
        device_args={"scheduler": "swtf", "max_inflight": 16,
                     "controller_overhead_us": 5.0},
        seed=2009,
    )


def main() -> None:
    points = [SweepPoint(label, fleet_for(count, gap))
              for label, count, gap in LOAD_POINTS]
    results = run_sweep(points)

    print("gold tenant (oltp) vs a bronze neighbour's offered load\n")
    header = (f"{'neighbour':10s} {'nbr req':>8s} {'nbr MB/s':>9s} "
              f"{'gold p50 (ms)':>14s} {'gold p95 (ms)':>14s} "
              f"{'gold p99 (ms)':>14s}")
    print(header)
    print("-" * len(header))
    baseline_p95 = None
    for point, report in results:
        gold = next(t for t in report.tenants if t.name == "oltp")
        batch = next(t for t in report.tenants if t.name == "batch")
        summary = gold.latency()
        if baseline_p95 is None:
            baseline_p95 = summary.p95_us
        print(f"{point.label:10s} {batch.requests:8d} "
              f"{batch.throughput_mb_s:9.3f} "
              f"{summary.p50_us / 1000:14.3f} "
              f"{summary.p95_us / 1000:14.3f} "
              f"{summary.p99_us / 1000:14.3f}")
    worst = results[-1][1]
    gold_worst = next(t for t in worst.tenants if t.name == "oltp")
    cost = gold_worst.latency().p95_us / baseline_p95
    print(f"\nnoisy-neighbour cost at '{results[-1][0].label}': "
          f"{cost:.2f}x the idle-neighbour p95 "
          f"(fleet digest {worst.fingerprint():#010x} — rerun to verify "
          f"bit-identical)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The unwritten contract (paper Table 1), regenerated from measurements.

Probes every contract term against the disk, RAID, MEMS, and SSD models
and prints measured vs paper verdicts with the measurement evidence.

Run:  PYTHONPATH=src python examples/contract_report.py      (takes a few seconds)
"""

from repro.bench.experiments.table1_contract import run


def main() -> None:
    result = run()
    print(result.render())
    print(f"\nagreement with the paper's verdicts: "
          f"{result.metadata['agreement']:.0%}\n")
    print("evidence per cell:")
    for key, value in result.metadata["evidence"].items():
        print(f"  {key:10s} {value}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Informed cleaning (paper §3.5, Table 5): what delete notifications buy.

Runs the same Postmark file churn against two identical SSDs — one that
ignores FREE notifications (the default block device) and one that
processes them — and compares the cleaning work.  The uninformed device
keeps copying dead file data from block to block forever.

Run:  PYTHONPATH=src python examples/informed_cleaning.py
"""

from repro import SSD, SSDConfig, Simulator
from repro.flash.geometry import FlashGeometry
from repro.traces.postmark import PostmarkConfig, generate_postmark
from repro.units import MIB
from repro.workloads.driver import replay_trace


def run_device(informed: bool):
    sim = Simulator()
    ssd = SSD(sim, SSDConfig(
        name="informed" if informed else "default",
        n_elements=4,
        geometry=FlashGeometry(page_bytes=4096, pages_per_block=16,
                               blocks_per_element=128),  # 8 MB/element
        trim_enabled=informed,
        controller_overhead_us=5.0,
        max_inflight=16,
    ))
    trace = generate_postmark(PostmarkConfig(
        volume_bytes=int(ssd.capacity_bytes * 0.97 // MIB * MIB),
        # the pool holds ~half the volume: the other half cycles through
        # create/delete, leaving a large dead set on the uninformed device
        initial_files=430,
        transactions=6000,
        interarrival_us=250.0,
        seed=42,
    ))
    replay_trace(sim, ssd, trace)
    return ssd


def main() -> None:
    default = run_device(informed=False)
    informed = run_device(informed=True)

    d, i = default.ftl.stats, informed.ftl.stats
    print("Postmark churn on an 32 MB-class SSD (same trace, two devices)\n")
    print(f"{'':24s}{'default':>12s}{'informed':>12s}")
    print(f"{'pages moved by cleaner':24s}{d.clean_pages_moved:12d}"
          f"{i.clean_pages_moved:12d}")
    print(f"{'cleaning erases':24s}{d.clean_erases:12d}{i.clean_erases:12d}")
    print(f"{'cleaning time (ms)':24s}{d.clean_time_us / 1000:12.1f}"
          f"{i.clean_time_us / 1000:12.1f}")
    print(f"{'trimmed pages':24s}{d.trimmed_pages:12d}{i.trimmed_pages:12d}")
    print(f"{'write amplification':24s}"
          f"{default.stats.write_amplification:12.2f}"
          f"{informed.stats.write_amplification:12.2f}")
    if d.clean_pages_moved:
        print(f"\nrelative pages moved (informed/default): "
              f"{i.clean_pages_moved / d.clean_pages_moved:.2f}"
              f"   (paper Table 5: 0.31-0.50)")
        print(f"relative cleaning time: "
              f"{i.clean_time_us / d.clean_time_us:.2f}"
              f"   (paper Table 5: 0.60-0.69)")


if __name__ == "__main__":
    main()

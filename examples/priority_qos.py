#!/usr/bin/env python
"""Priority-aware cleaning (paper §3.6, Figure 3): QoS under garbage
collection.

An aged SSD serves a write-heavy open-loop workload in which 10% of
requests are tagged foreground/priority.  With the priority-agnostic
cleaner, foreground requests queue behind cleaning bursts; the
priority-aware cleaner postpones cleaning (down to the critical watermark)
while foreground requests are outstanding.

Run:  PYTHONPATH=src python examples/priority_qos.py
"""

from repro import SSD, SSDConfig, Simulator
from repro.flash.geometry import FlashGeometry
from repro.ftl.cleaning import CleaningConfig
from repro.ftl.prefill import prefill_pagemap
from repro.traces.synthetic import SyntheticConfig, generate_synthetic
from repro.workloads.driver import replay_trace


def run_scheme(priority_aware: bool):
    sim = Simulator()
    ssd = SSD(sim, SSDConfig(
        name="aware" if priority_aware else "agnostic",
        n_elements=16,  # enough parallelism to stay below saturation
        geometry=FlashGeometry(page_bytes=4096, pages_per_block=32,
                               blocks_per_element=256),  # 32 MB/element
        cleaning=CleaningConfig(
            low_watermark=0.05,       # the paper's 5%
            critical_watermark=0.02,  # and 2%
            priority_aware=priority_aware,
            batch_pages=4,
        ),
        controller_overhead_us=5.0,
    ))
    prefill_pagemap(ssd.ftl, 0.72, overwrite_fraction=0.40)
    warmup, measured = 12_000, 20_000
    trace = generate_synthetic(SyntheticConfig(
        count=warmup + measured,
        region_bytes=int(ssd.capacity_bytes * 0.68),
        request_bytes=4096,
        read_fraction=0.4,            # 60% writes: cleaning is busy
        interarrival_max_us=100.0,    # the paper's U(0, 0.1 ms)
        priority_fraction=0.10,
        seed=7,
    ))
    # measure past the warmup boundary: the device must reach cleaning
    # steady state before the schemes are compared
    boundary = trace[warmup].time_us
    result = replay_trace(sim, ssd, trace)
    fg = [c.response_us for c in result.completions
          if c.submit_us >= boundary and c.priority > 0]
    bg = [c.response_us for c in result.completions
          if c.submit_us >= boundary and c.priority == 0]
    return (
        sum(fg) / len(fg) / 1000,
        sum(bg) / len(bg) / 1000,
        ssd.ftl.stats.clean_pages_moved,
    )


def main() -> None:
    fg_a, bg_a, moved_a = run_scheme(priority_aware=False)
    fg_p, bg_p, moved_p = run_scheme(priority_aware=True)

    print("60%-write open-loop workload, 10% priority requests\n")
    print(f"{'':26s}{'agnostic':>10s}{'aware':>10s}")
    print(f"{'foreground mean (ms)':26s}{fg_a:10.3f}{fg_p:10.3f}")
    print(f"{'background mean (ms)':26s}{bg_a:10.3f}{bg_p:10.3f}")
    print(f"{'cleaner pages moved':26s}{moved_a:10d}{moved_p:10d}")
    improvement = (fg_a - fg_p) / fg_a * 100
    print(f"\nforeground improvement: {improvement:.1f}%  "
          f"(paper Table 6: ~10% for write-heavy mixes)")


if __name__ == "__main__":
    main()

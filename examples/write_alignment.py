#!/usr/bin/env python
"""Write amplification and alignment (paper §3.4, Figure 2 + Table 3).

Part 1 shows the Figure 2 saw-tooth: on a block-mapped device with a 1 MB
stripe, bandwidth peaks when the write size aligns with the stripe and
collapses just past each multiple.

Part 2 shows the Table 3 cure: on a 32 KB-logical-page SSD near
saturation, merging co-queued writes onto stripe boundaries leaves
random streams untouched but halves response times for sequential ones.

Run:  PYTHONPATH=src python examples/write_alignment.py      (takes a few seconds)
"""

from repro.bench.experiments.figure2_sawtooth import _bandwidth_for_size
from repro.bench.experiments.table3_alignment import _mean_response_ms
from repro.bench.plot import ascii_plot
from repro.units import KIB, MIB


def saw_tooth() -> None:
    print("Part 1 — the Figure 2 saw-tooth (S2slc, 1 MB stripe)\n")
    sizes = [256 * KIB, 512 * KIB, MIB, MIB + 512, MIB + 512 * KIB,
             2 * MIB, 2 * MIB + 512, 3 * MIB]
    points = []
    for size in sizes:
        bandwidth = _bandwidth_for_size(size, count=4, element_mb=32)
        points.append((size / MIB, bandwidth))
        marker = "  <-- stripe-aligned peak" if size % MIB == 0 else ""
        print(f"  write {size / MIB:6.3f} MB -> {bandwidth:6.2f} MB/s{marker}")
    print()
    print(ascii_plot({"bandwidth": points}, width=48, height=10,
                     x_label="write size (MB)", y_label="MB/s"))


def alignment() -> None:
    print("\nPart 2 — the Table 3 cure (32 KB logical page, merged writes)\n")
    print(f"  {'P(sequential)':>14s} {'unaligned':>10s} {'aligned':>10s}")
    for p in (0.0, 0.4, 0.8):
        unaligned = _mean_response_ms(False, p, count=1500, seed=42)
        aligned = _mean_response_ms(True, p, count=1500, seed=42)
        print(f"  {p:14.1f} {unaligned:9.2f}ms {aligned:9.2f}ms")
    print("\n  random writes (p=0): merging has nothing to do, no penalty;")
    print("  sequential writes: one merged stripe write serves the whole run.")


def main() -> None:
    saw_tooth()
    alignment()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The device zoo (paper Table 2): why device class dominates behaviour.

Probes sequential/random read/write bandwidth on each preset device —
the HDD, the high-end page-mapped SSD, the low-end block-mapped SSD with
its 1 MB stripe, and friends — and prints a Table 2-style comparison.

Run:  PYTHONPATH=src python examples/device_zoo.py      (takes a few seconds)
"""

from repro.bench.experiments.table2_bandwidth import PAPER_TABLE2, run


def main() -> None:
    result = run(scale=0.5)
    print(result.render())
    print("\npaper's measurements for comparison:")
    header = f"{'Device':>9s} {'SeqRd':>7s} {'RandRd':>7s} {'Ratio':>7s} " \
             f"{'SeqWr':>7s} {'RandWr':>7s} {'Ratio':>7s}"
    print(header)
    for name, values in PAPER_TABLE2.items():
        cells = " ".join(f"{v:7.1f}" for v in values)
        print(f"{name:>9s} {cells}")
    print(
        "\nwhat to look for: the HDD's huge seq/rand gap; single-digit SSD\n"
        "read ratios; S2/S3 (block-mapped) random writes worse than the\n"
        "HDD's; S4's near-1.0 ratios (log-structured page-mapped FTL)."
    )


if __name__ == "__main__":
    main()
